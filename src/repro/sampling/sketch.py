"""Multistage-filter heavy-hitter detection (count-min style sketch).

The second memory-bounded mechanism of Estan & Varghese's "New
directions in traffic measurement and accounting" (the paper's reference
[11]): every packet updates ``depth`` hash-indexed counter arrays, and a
flow is reported as a heavy hitter when the minimum of its counters
exceeds a threshold.  We implement the sketch in its conservative-update
variant, which is the one used in practice.

Like :mod:`repro.sampling.sample_and_hold`, this is a baseline that
operates on the *unsampled* packet stream; combining it with a packet
sampler quantifies how sampling degrades heavy-hitter detection — the
question raised in the paper's future work.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..flows.keys import FiveTupleKeyPolicy, FlowKeyPolicy
from ..flows.packets import Packet


class MultistageFilter:
    """Count-min sketch with conservative update for heavy-hitter detection.

    Parameters
    ----------
    width:
        Number of counters per stage.
    depth:
        Number of stages (independent hash functions).
    seed:
        Seed of the hash functions.
    key_policy:
        Flow definition used for counting.
    """

    def __init__(
        self,
        width: int = 1024,
        depth: int = 4,
        seed: int = 0,
        key_policy: FlowKeyPolicy | None = None,
    ) -> None:
        if width < 1:
            raise ValueError(f"width must be at least 1, got {width}")
        if depth < 1:
            raise ValueError(f"depth must be at least 1, got {depth}")
        self.width = int(width)
        self.depth = int(depth)
        self.key_policy = key_policy if key_policy is not None else FiveTupleKeyPolicy()
        rng = np.random.default_rng(seed)
        self._salts = rng.integers(1, 2**31 - 1, size=self.depth, dtype=np.int64)
        self._counters = np.zeros((self.depth, self.width), dtype=np.int64)
        self._rows = np.arange(self.depth)
        self._packets_seen = 0

    # ------------------------------------------------------------------
    def _indices(self, key: object) -> np.ndarray:
        base = hash(key) & 0x7FFFFFFFFFFFFFFF
        mixed = (base * self._salts) ^ (base >> 17)
        return np.abs(mixed) % self.width

    def _index_matrix(self, keys: list[object]) -> np.ndarray:
        """Counter columns of many keys at once: an ``(n, depth)`` gather index."""
        bases = np.array(
            [hash(key) & 0x7FFFFFFFFFFFFFFF for key in keys], dtype=np.int64
        )
        with np.errstate(over="ignore"):
            mixed = (bases[:, None] * self._salts) ^ (bases[:, None] >> 17)
        return np.abs(mixed) % self.width

    @property
    def packets_seen(self) -> int:
        """Total number of packets accounted."""
        return self._packets_seen

    def observe(self, packet: Packet) -> None:
        """Account one packet with conservative update."""
        key = self.key_policy.key_of(packet.five_tuple)
        rows = self._rows
        cols = self._indices(key)
        current = self._counters[rows, cols]
        minimum = current.min()
        # Conservative update: only raise the counters that equal the
        # current minimum estimate.
        self._counters[rows, cols] = np.maximum(current, minimum + 1)
        self._packets_seen += 1

    def observe_many(self, packets: Iterable[Packet]) -> None:
        """Account a stream of packets.

        The update loop is deliberately per-packet: conservative update
        makes every packet's counter increments depend on the counter
        values its predecessors left behind (two colliding packets
        observed in either order update *different* counters), so no
        batched formulation reproduces the sequential sketch
        bit-identically.  Only the read paths vectorise
        (:meth:`estimates`); chunking the stream through this method is
        trivially order-preserving and therefore chunk-invariant.
        """
        for packet in packets:
            self.observe(packet)

    def estimate(self, key: object) -> int:
        """Estimated packet count of a flow (never underestimates).

        Parameters
        ----------
        key:
            Flow key under the sketch's key policy.

        Returns
        -------
        int
            The minimum of the flow's counters — an upper bound on the
            true count that is exact for flows without collisions.
        """
        rows = self._rows
        cols = self._indices(key)
        return int(self._counters[rows, cols].min())

    def estimates(self, keys: list[object]) -> np.ndarray:
        """Estimated packet counts of many flows in one vectorised gather.

        Parameters
        ----------
        keys:
            Flow keys under the sketch's key policy.

        Returns
        -------
        numpy.ndarray
            ``int64`` array aligned with ``keys``; entry ``i`` equals
            ``estimate(keys[i])``.
        """
        if not keys:
            return np.empty(0, dtype=np.int64)
        cols = self._index_matrix(keys)
        return self._counters[self._rows[None, :], cols].min(axis=1)

    def heavy_hitters(self, candidate_keys: Iterable[object], threshold: int) -> list[tuple[object, int]]:
        """Candidates whose estimated count is at least ``threshold``.

        The sketch itself cannot enumerate keys; callers supply the
        candidate set (e.g. the keys seen by a parallel sampled flow
        table) and the sketch confirms or refutes them with one
        vectorised :meth:`estimates` gather.

        Parameters
        ----------
        candidate_keys:
            Flow keys to test.
        threshold:
            Minimum estimated packet count (at least 1).

        Returns
        -------
        list[tuple[object, int]]
            ``(key, estimate)`` pairs in decreasing estimate order.
        """
        if threshold < 1:
            raise ValueError(f"threshold must be at least 1, got {threshold}")
        keys = list(candidate_keys)
        values = self.estimates(keys)
        hits = np.flatnonzero(values >= threshold)
        results = [(keys[int(index)], int(values[index])) for index in hits]
        results.sort(key=lambda item: -item[1])
        return results

    def reset(self) -> None:
        """Clear all counters."""
        self._counters.fill(0)
        self._packets_seen = 0


__all__ = ["MultistageFilter"]
