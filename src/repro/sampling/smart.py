"""Size-dependent ("smart") flow record sampling.

Duffield & Lund's smart sampling — cited by the paper as [8] — selects
*flow records* (not packets) with a probability that increases with the
flow size, so that the large flows that dominate resource usage are kept
with certainty while small flows are thinned aggressively::

    P{keep record of size x} = min(1, x / z)

where ``z`` is the size threshold.  Kept records are re-weighted by
``max(x, z)`` to keep volume estimates unbiased.

This is a *baseline*: it operates on complete flow records (as exported
by a collector) rather than on raw packets, so its accuracy on the top-t
ranking problem bounds what packet sampling can hope to achieve with a
comparable record budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..flows.records import FlowSummary


@dataclass(frozen=True)
class SampledFlowRecord:
    """A flow record kept by smart sampling, with its unbiased size estimate."""

    flow: FlowSummary
    estimated_packets: float


class SmartFlowSampler:
    """Threshold (smart) sampling of flow records.

    Parameters
    ----------
    threshold_packets:
        The threshold ``z`` in packets.  Records of at least ``z``
        packets are always kept; a record of ``x < z`` packets is kept
        with probability ``x / z``.
    rng:
        Random generator (or seed).
    """

    def __init__(
        self,
        threshold_packets: float,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if threshold_packets <= 0:
            raise ValueError(f"threshold_packets must be positive, got {threshold_packets}")
        self.threshold_packets = float(threshold_packets)
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

    def keep_probability(self, packets: float) -> float:
        """Probability of keeping a record of the given size.

        Parameters
        ----------
        packets:
            Flow size in packets (must be positive).

        Returns
        -------
        float
            ``min(1, packets / z)``.
        """
        if packets <= 0:
            raise ValueError("packets must be positive")
        return min(1.0, packets / self.threshold_packets)

    def keep_probabilities(self, sizes: Sequence[float] | np.ndarray) -> np.ndarray:
        """Vectorised keep probabilities for an array of flow sizes.

        Parameters
        ----------
        sizes:
            Flow sizes in packets (all positive).

        Returns
        -------
        numpy.ndarray
            ``min(1, sizes / z)`` elementwise.
        """
        sizes_arr = np.asarray(sizes, dtype=np.float64)
        if sizes_arr.size and np.any(sizes_arr <= 0):
            raise ValueError("packets must be positive")
        return np.minimum(1.0, sizes_arr / self.threshold_packets)

    def expected_kept_records(self, sizes: Sequence[float]) -> float:
        """Expected number of records kept for a list of flow sizes.

        Parameters
        ----------
        sizes:
            Flow sizes in packets.

        Returns
        -------
        float
            Sum of the per-record keep probabilities.
        """
        return float(self.keep_probabilities(sizes).sum())

    def sample_records(self, flows: Sequence[FlowSummary]) -> list[SampledFlowRecord]:
        """Apply smart sampling to a list of flow summaries.

        The keep decisions and size estimates are computed as one NumPy
        expression over the size array (one uniform draw per record, in
        record order), so collector-scale record lists sample at array
        speed.

        Parameters
        ----------
        flows:
            Complete flow records as exported by a collector.

        Returns
        -------
        list[SampledFlowRecord]
            The kept records together with their unbiased size
            estimates ``max(x, z)``.
        """
        if not flows:
            return []
        sizes = np.asarray([flow.packets for flow in flows], dtype=np.float64)
        probabilities = self.keep_probabilities(sizes)
        keep = self._rng.random(len(flows)) < probabilities
        estimates = np.maximum(sizes, self.threshold_packets)
        return [
            SampledFlowRecord(flow=flows[index], estimated_packets=float(estimates[index]))
            for index in np.flatnonzero(keep)
        ]

    def rank_top(self, flows: Sequence[FlowSummary], count: int) -> list[SampledFlowRecord]:
        """Top ``count`` kept records ranked by estimated size.

        Parameters
        ----------
        flows:
            Complete flow records to sample and rank.
        count:
            Number of top records to return (at least 1).

        Returns
        -------
        list[SampledFlowRecord]
            Kept records in decreasing estimated-size order, ties broken
            by byte count.
        """
        if count < 1:
            raise ValueError(f"count must be at least 1, got {count}")
        kept = self.sample_records(flows)
        kept.sort(key=lambda record: (-record.estimated_packets, -record.flow.bytes))
        return kept[:count]


__all__ = ["SmartFlowSampler", "SampledFlowRecord"]
