"""Independent random (Bernoulli) packet sampling.

This is the sampling model analysed throughout the paper: every packet
is kept with a constant probability ``p``, independently of every other
packet.  The sampled size of a flow of ``S`` packets is then
binomially distributed — the starting point of the misranking analysis
in Section 3.
"""

from __future__ import annotations

import numpy as np

from ..flows.packets import Packet, PacketBatch
from ..spec import format_spec
from .base import PacketSampler


class BernoulliSampler(PacketSampler):
    """Keep each packet independently with probability ``rate``.

    Parameters
    ----------
    rate:
        Packet sampling probability ``p`` in ``(0, 1]``.
    rng:
        NumPy random generator (or seed) driving the sampling decisions.
        Passing a seed makes a simulation run reproducible.
    """

    def __init__(self, rate: float, rng: np.random.Generator | int | None = None) -> None:
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        self.rate = float(rate)
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.spec = format_spec("bernoulli", {"rate": self.rate})
        self.name = self.spec

    @property
    def effective_rate(self) -> float:
        """Long-run fraction of packets kept; equals ``rate``."""
        return self.rate

    def sample_packet(self, packet: Packet) -> bool:
        """One independent keep/drop decision (packet content is ignored).

        Parameters
        ----------
        packet:
            The packet under consideration (unused).

        Returns
        -------
        bool
            True when the packet is kept.
        """
        del packet  # Decision is independent of packet content.
        return bool(self._rng.random() < self.rate)

    def sample_mask(self, batch: PacketBatch) -> np.ndarray:
        """Independent keep/drop decisions for a whole batch.

        Parameters
        ----------
        batch:
            The packets to decide on, in stream order.

        Returns
        -------
        numpy.ndarray
            Boolean keep-mask with one entry per packet; exactly one
            uniform draw is consumed per packet, so the mask sequence is
            invariant to how the stream is chunked.
        """
        return self._rng.random(len(batch)) < self.rate


__all__ = ["BernoulliSampler"]
