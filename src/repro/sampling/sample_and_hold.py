"""Sample-and-hold heavy-hitter identification (Estan & Varghese).

The paper's related work ([11]) identifies large flows with bounded
memory by *sampling-and-holding*: each packet of a flow that is not yet
tracked is sampled with a small probability; once a flow is tracked,
**every** subsequent packet of that flow is counted.  Compared to plain
packet sampling this removes most of the size estimation noise for the
flows that matter, at the cost of per-packet flow table lookups.

The paper's future work asks how packet sampling interacts with such
memory-bounded mechanisms; this implementation makes that experiment
possible (see the ablation benchmark) and serves as a practical baseline
for the detection problem.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..flows.keys import FiveTupleKeyPolicy, FlowKeyPolicy
from ..flows.packets import Packet, PacketBatch
from ..spec import format_spec
from .base import PacketSampler


class SampleAndHold:
    """Sample-and-hold flow counter with bounded memory.

    Parameters
    ----------
    sampling_rate:
        Probability of starting to track a flow on one of its packets.
    max_entries:
        Maximum number of tracked flows; when the table is full the
        smallest tracked entry is evicted to admit a newly sampled flow.
    key_policy:
        Flow definition used for tracking.
    rng:
        Random generator (or seed).
    """

    def __init__(
        self,
        sampling_rate: float,
        max_entries: int | None = None,
        key_policy: FlowKeyPolicy | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if not 0.0 < sampling_rate <= 1.0:
            raise ValueError(f"sampling_rate must be in (0, 1], got {sampling_rate}")
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1 when given")
        self.sampling_rate = float(sampling_rate)
        self.max_entries = max_entries
        self.key_policy = key_policy if key_policy is not None else FiveTupleKeyPolicy()
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self._counters: dict[object, int] = {}
        self._evictions = 0

    # ------------------------------------------------------------------
    @property
    def tracked_flows(self) -> int:
        """Number of flows currently tracked."""
        return len(self._counters)

    @property
    def evictions(self) -> int:
        """Number of entries evicted because of the memory bound."""
        return self._evictions

    def observe(self, packet: Packet) -> None:
        """Process one packet.

        Exactly one uniform draw is consumed per packet, whether or not
        the flow is already tracked — the same chunk-invariance
        treatment as the streaming samplers: feeding a packet sequence
        through :meth:`observe` one at a time, through
        :meth:`observe_many` in one call, or through
        :meth:`observe_many` in arbitrary chunks produces the identical
        table for the same generator state.
        """
        draw = self._rng.random()  # Always one draw per packet (chunk invariance).
        key = self.key_policy.key_of(packet.five_tuple)
        self._observe_key(key, draw)

    def _observe_key(self, key: object, draw: float) -> None:
        if key in self._counters:
            self._counters[key] += 1
            return
        if draw >= self.sampling_rate:
            return
        if self.max_entries is not None and len(self._counters) >= self.max_entries:
            smallest = min(self._counters, key=self._counters.get)
            del self._counters[smallest]
            self._evictions += 1
        self._counters[key] = 1

    def observe_many(self, packets: Iterable[Packet]) -> None:
        """Process a stream of packets with batched admission draws.

        The admission draws are taken as one batched ``random(n)`` call
        — element for element the same sequence the per-packet path
        consumes — and the table updates are grouped per flow key: an
        already-tracked flow gains its whole packet count at once, an
        untracked flow is admitted at its first in-order admission
        candidate and counts the packets from there on.  Bit-identical
        to calling :meth:`observe` per packet, for any chunking.  The
        grouped path needs the eviction order of full tables, so a
        bounded table (``max_entries``) falls back to the sequential
        per-packet updates (draws still batched).
        """
        packet_list = packets if isinstance(packets, list) else list(packets)
        if not packet_list:
            return
        keys = [self.key_policy.key_of(packet.five_tuple) for packet in packet_list]
        draws = self._rng.random(len(keys))
        if self.max_entries is not None:
            for key, draw in zip(keys, draws):
                self._observe_key(key, float(draw))
            return
        # Group packet positions by key, preserving stream order within
        # each group (dict preserves first-seen order; positions are
        # appended in order).
        positions_of: dict[object, list[int]] = {}
        for position, key in enumerate(keys):
            positions_of.setdefault(key, []).append(position)
        candidates = draws < self.sampling_rate
        for key, positions in positions_of.items():
            if key in self._counters:
                self._counters[key] += len(positions)
                continue
            admitted_at = next(
                (rank for rank, position in enumerate(positions) if candidates[position]),
                None,
            )
            if admitted_at is not None:
                self._counters[key] = len(positions) - admitted_at

    def counts(self) -> dict[object, int]:
        """Current per-flow packet counts (only counted-after-admission packets).

        Returns
        -------
        dict
            Flow key to counted packets, a snapshot of the table.
        """
        return dict(self._counters)

    def estimated_sizes(self) -> dict[object, float]:
        """Unbiased-ish size estimates: admission is worth ``1/p`` packets.

        A tracked flow missed ``Geometric(p)`` packets before admission
        on average, so adding ``1/p - 1`` to the counted packets corrects
        most of the negative bias.
        """
        correction = 1.0 / self.sampling_rate - 1.0
        return {key: count + correction for key, count in self._counters.items()}

    def top(self, count: int) -> list[tuple[object, float]]:
        """The ``count`` largest tracked flows by estimated size.

        Parameters
        ----------
        count:
            Number of flows to return (at least 1).

        Returns
        -------
        list[tuple[object, float]]
            ``(key, estimated packets)`` pairs, largest first.
        """
        if count < 1:
            raise ValueError(f"count must be at least 1, got {count}")
        estimates = self.estimated_sizes()
        ordered = sorted(estimates.items(), key=lambda item: -item[1])
        return ordered[:count]

    def reset(self) -> None:
        """Clear all tracked flows (end of a measurement interval)."""
        self._counters.clear()
        self._evictions = 0


class SampleAndHoldSampler(PacketSampler):
    """Sample-and-hold as a streaming :class:`PacketSampler`.

    Each packet of a flow that is not yet tracked is a *candidate* with
    probability ``rate``; the first candidate admits the flow, and every
    packet of an admitted flow from that point on is kept.  Unlike
    :class:`SampleAndHold` (the bounded-memory heavy-hitter table) this
    adapter plugs into the pipeline executor, so sample-and-hold can be
    compared against plain packet sampling on the ranking/detection
    metrics with ``repro run --sampler sample-and-hold:rate=0.01``.

    The sampler is deliberately *stateful across chunks* (the tracked
    flow set persists), which makes it the canonical stress test for the
    executor's determinism guarantees: exactly one uniform draw is
    consumed per packet in stream order, so the keep-mask sequence is
    invariant to chunk size and to serial/process execution.

    Parameters
    ----------
    rate:
        Flow admission probability in ``(0, 1]``.
    rng:
        NumPy random generator (or seed) driving the admission draws.

    Notes
    -----
    :attr:`effective_rate` reports the admission probability ``rate``;
    the long-run fraction of packets *kept* is higher, because every
    post-admission packet of a tracked flow is counted.  The vectorised
    entry point identifies flows by the batch's integer flow ids, the
    object-level entry point by the 5-tuple hash; do not mix the two on
    one instance.
    """

    def __init__(self, rate: float, rng: np.random.Generator | int | None = None) -> None:
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        self.rate = float(rate)
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self._tracked: set[int] = set()
        self.spec = format_spec("sample-and-hold", {"rate": self.rate})
        self.name = self.spec

    @property
    def effective_rate(self) -> float:
        """Flow admission probability (a lower bound on the packet keep rate)."""
        return self.rate

    @property
    def tracked_flows(self) -> int:
        """Number of flows currently held."""
        return len(self._tracked)

    def sample_packet(self, packet: Packet) -> bool:
        """Process one packet: keep it when its flow is (or becomes) tracked.

        Parameters
        ----------
        packet:
            The packet under consideration; its 5-tuple hash identifies
            the flow.

        Returns
        -------
        bool
            True when the flow was already tracked or is admitted by
            this packet's draw.
        """
        draw = self._rng.random()  # Always one draw per packet (chunk invariance).
        key = hash(packet.five_tuple)
        if key in self._tracked:
            return True
        if draw < self.rate:
            self._tracked.add(key)
            return True
        return False

    def sample_mask(self, batch: PacketBatch) -> np.ndarray:
        """Keep-mask for a batch, carrying the tracked-flow set across batches.

        Parameters
        ----------
        batch:
            The packets to decide on, in stream order.

        Returns
        -------
        numpy.ndarray
            Boolean keep-mask equal, element for element, to feeding the
            packets one at a time through :meth:`sample_packet` keyed by
            flow id: packets of already-tracked flows are kept, and
            within the batch every flow's first admission draw turns the
            rest of that flow's packets on.
        """
        ids = np.asarray(batch.flow_ids, dtype=np.int64)
        draws = self._rng.random(ids.size)
        if self._tracked:
            tracked = np.fromiter(self._tracked, dtype=np.int64, count=len(self._tracked))
            keep = np.isin(ids, tracked)
        else:
            keep = np.zeros(ids.size, dtype=bool)
        pending = np.flatnonzero(~keep)
        if pending.size:
            # Group the not-yet-tracked packets by flow; within each
            # group, the first admission candidate (in stream order)
            # admits the flow and keeps every later packet of the group.
            order = np.argsort(ids[pending], kind="stable")
            sorted_ids = ids[pending][order]
            positions = pending[order]
            candidates = draws[pending][order] < self.rate
            segment_starts = np.concatenate(
                ([0], np.flatnonzero(np.diff(sorted_ids)) + 1)
            )
            segment_lengths = np.diff(np.concatenate((segment_starts, [sorted_ids.size])))
            sentinel = np.iinfo(np.int64).max
            first_candidate = np.minimum.reduceat(
                np.where(candidates, positions, sentinel), segment_starts
            )
            segment_of = np.repeat(np.arange(segment_starts.size), segment_lengths)
            kept = positions >= first_candidate[segment_of]
            keep[positions[kept]] = True
            admitted = sorted_ids[segment_starts][first_candidate < sentinel]
            self._tracked.update(int(flow) for flow in admitted)
        return keep

    def reset(self) -> None:
        """Forget all tracked flows (start of a fresh stream)."""
        self._tracked.clear()


__all__ = ["SampleAndHold", "SampleAndHoldSampler"]
