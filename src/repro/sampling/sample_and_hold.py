"""Sample-and-hold heavy-hitter identification (Estan & Varghese).

The paper's related work ([11]) identifies large flows with bounded
memory by *sampling-and-holding*: each packet of a flow that is not yet
tracked is sampled with a small probability; once a flow is tracked,
**every** subsequent packet of that flow is counted.  Compared to plain
packet sampling this removes most of the size estimation noise for the
flows that matter, at the cost of per-packet flow table lookups.

The paper's future work asks how packet sampling interacts with such
memory-bounded mechanisms; this implementation makes that experiment
possible (see the ablation benchmark) and serves as a practical baseline
for the detection problem.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..flows.keys import FiveTupleKeyPolicy, FlowKeyPolicy
from ..flows.packets import Packet


class SampleAndHold:
    """Sample-and-hold flow counter with bounded memory.

    Parameters
    ----------
    sampling_rate:
        Probability of starting to track a flow on one of its packets.
    max_entries:
        Maximum number of tracked flows; when the table is full the
        smallest tracked entry is evicted to admit a newly sampled flow.
    key_policy:
        Flow definition used for tracking.
    rng:
        Random generator (or seed).
    """

    def __init__(
        self,
        sampling_rate: float,
        max_entries: int | None = None,
        key_policy: FlowKeyPolicy | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if not 0.0 < sampling_rate <= 1.0:
            raise ValueError(f"sampling_rate must be in (0, 1], got {sampling_rate}")
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1 when given")
        self.sampling_rate = float(sampling_rate)
        self.max_entries = max_entries
        self.key_policy = key_policy if key_policy is not None else FiveTupleKeyPolicy()
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self._counters: dict[object, int] = {}
        self._evictions = 0

    # ------------------------------------------------------------------
    @property
    def tracked_flows(self) -> int:
        """Number of flows currently tracked."""
        return len(self._counters)

    @property
    def evictions(self) -> int:
        """Number of entries evicted because of the memory bound."""
        return self._evictions

    def observe(self, packet: Packet) -> None:
        """Process one packet."""
        key = self.key_policy.key_of(packet.five_tuple)
        if key in self._counters:
            self._counters[key] += 1
            return
        if self._rng.random() >= self.sampling_rate:
            return
        if self.max_entries is not None and len(self._counters) >= self.max_entries:
            smallest = min(self._counters, key=self._counters.get)
            del self._counters[smallest]
            self._evictions += 1
        self._counters[key] = 1

    def observe_many(self, packets: Iterable[Packet]) -> None:
        """Process a stream of packets."""
        for packet in packets:
            self.observe(packet)

    def counts(self) -> dict[object, int]:
        """Current per-flow packet counts (only counted-after-admission packets)."""
        return dict(self._counters)

    def estimated_sizes(self) -> dict[object, float]:
        """Unbiased-ish size estimates: admission is worth ``1/p`` packets.

        A tracked flow missed ``Geometric(p)`` packets before admission
        on average, so adding ``1/p - 1`` to the counted packets corrects
        most of the negative bias.
        """
        correction = 1.0 / self.sampling_rate - 1.0
        return {key: count + correction for key, count in self._counters.items()}

    def top(self, count: int) -> list[tuple[object, float]]:
        """The ``count`` largest tracked flows by estimated size."""
        if count < 1:
            raise ValueError(f"count must be at least 1, got {count}")
        estimates = self.estimated_sizes()
        ordered = sorted(estimates.items(), key=lambda item: -item[1])
        return ordered[:count]

    def reset(self) -> None:
        """Clear all tracked flows (end of a measurement interval)."""
        self._counters.clear()
        self._evictions = 0


__all__ = ["SampleAndHold"]
