"""Packet sampler interface.

A packet sampler decides, for every packet crossing the monitored link,
whether the packet is kept ("sampled") or dropped.  The paper's analysis
assumes independent random sampling with a constant probability; other
strategies (periodic, hash-based flow sampling) are provided for the
comparisons the paper discusses in its introduction and related work.

Samplers expose two entry points:

* :meth:`PacketSampler.sample_packet` for object-level streams;
* :meth:`PacketSampler.sample_mask` for the vectorised simulation path,
  which returns a boolean keep/drop mask for a whole
  :class:`~repro.flows.packets.PacketBatch` at once.
"""

from __future__ import annotations

import abc
import copy

import numpy as np

from ..flows.packets import Packet, PacketBatch


class PacketSampler(abc.ABC):
    """Decides which packets of a stream are kept."""

    #: Human-readable name used in reports.  Built-in samplers set this
    #: to their canonical registry spec (see :attr:`spec`), so the
    #: labels printed by ``repro run`` are valid ``--sampler`` flags.
    name: str = "abstract"

    #: Canonical ``name:key=value,...`` registry spec that rebuilds this
    #: sampler (``None`` for samplers without a registry entry).  For
    #: built-in samplers the round-trip ``spec -> sampler -> spec`` is
    #: exact: ``SAMPLERS.create(*parse) .spec == spec``.
    spec: str | None = None

    @abc.abstractmethod
    def sample_packet(self, packet: Packet) -> bool:
        """Return True when the packet must be kept."""

    @abc.abstractmethod
    def sample_mask(self, batch: PacketBatch) -> np.ndarray:
        """Boolean keep-mask for every packet of the batch."""

    @property
    @abc.abstractmethod
    def effective_rate(self) -> float:
        """Long-run fraction of packets kept by the sampler."""

    def sample_batch(self, batch: PacketBatch) -> PacketBatch:
        """Return a new batch containing only the sampled packets.

        Parameters
        ----------
        batch:
            The packets to filter.

        Returns
        -------
        PacketBatch
            The kept packets, in their original order.
        """
        return batch.select(self.sample_mask(batch))

    def reset(self) -> None:
        """Clear any per-stream state (default: stateless)."""

    def spawn(self, rng: np.random.Generator | None = None) -> "PacketSampler":
        """Return an independent copy of this sampler for a fresh run.

        The pipeline executor uses one sampler clone per independent
        sampling realisation, so that stateful samplers (periodic
        counters, flow tables) never leak state between runs or rates.
        The clone starts from a clean :meth:`reset` state; when ``rng``
        is given, a randomised sampler's generator is replaced so that
        different runs draw independent decisions.

        Parameters
        ----------
        rng:
            Replacement generator for the clone's ``_rng`` attribute
            (ignored by non-randomised samplers).

        Returns
        -------
        PacketSampler
            An independent, reset copy of this sampler.
        """
        clone = copy.deepcopy(self)
        clone.reset()
        if rng is not None and isinstance(getattr(clone, "_rng", None), np.random.Generator):
            clone._rng = rng
        return clone

    def __repr__(self) -> str:
        return f"{type(self).__name__}(rate={self.effective_rate:.4g})"


__all__ = ["PacketSampler"]
