"""Packet sampler interface.

A packet sampler decides, for every packet crossing the monitored link,
whether the packet is kept ("sampled") or dropped.  The paper's analysis
assumes independent random sampling with a constant probability; other
strategies (periodic, hash-based flow sampling) are provided for the
comparisons the paper discusses in its introduction and related work.

Samplers expose two entry points:

* :meth:`PacketSampler.sample_packet` for object-level streams;
* :meth:`PacketSampler.sample_mask` for the vectorised simulation path,
  which returns a boolean keep/drop mask for a whole
  :class:`~repro.flows.packets.PacketBatch` at once.
"""

from __future__ import annotations

import abc
import copy

import numpy as np

from ..flows.packets import Packet, PacketBatch


class PacketSampler(abc.ABC):
    """Decides which packets of a stream are kept."""

    #: Human-readable name used in reports.
    name: str = "abstract"

    @abc.abstractmethod
    def sample_packet(self, packet: Packet) -> bool:
        """Return True when the packet must be kept."""

    @abc.abstractmethod
    def sample_mask(self, batch: PacketBatch) -> np.ndarray:
        """Boolean keep-mask for every packet of the batch."""

    @property
    @abc.abstractmethod
    def effective_rate(self) -> float:
        """Long-run fraction of packets kept by the sampler."""

    def sample_batch(self, batch: PacketBatch) -> PacketBatch:
        """Return a new batch containing only the sampled packets."""
        return batch.select(self.sample_mask(batch))

    def reset(self) -> None:
        """Clear any per-stream state (default: stateless)."""

    def spawn(self, rng: np.random.Generator | None = None) -> "PacketSampler":
        """Return an independent copy of this sampler for a fresh run.

        The pipeline executor uses one sampler clone per independent
        sampling realisation, so that stateful samplers (periodic
        counters, flow tables) never leak state between runs or rates.
        The clone starts from a clean :meth:`reset` state; when ``rng``
        is given, a randomised sampler's generator is replaced so that
        different runs draw independent decisions.
        """
        clone = copy.deepcopy(self)
        clone.reset()
        if rng is not None and isinstance(getattr(clone, "_rng", None), np.random.Generator):
            clone._rng = rng
        return clone

    def __repr__(self) -> str:
        return f"{type(self).__name__}(rate={self.effective_rate:.4g})"


__all__ = ["PacketSampler"]
