"""Hash-based flow sampling.

Flow sampling (keep *all* packets of a sampled flow) is the alternative
the paper contrasts with packet sampling in its introduction: it
preserves flow sizes perfectly but requires flow-state lookups at line
rate.  The usual stateless realisation hashes the flow key and keeps the
flow when the hash falls below a threshold.

Including it lets users quantify how much ranking accuracy is lost by
packet sampling compared to flow sampling at the same average packet
budget — the trade-off that motivates the whole paper.
"""

from __future__ import annotations

import numpy as np

from ..flows.packets import Packet, PacketBatch
from ..spec import format_spec
from .base import PacketSampler

_HASH_MODULUS = np.uint64(2**61 - 1)
_HASH_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)


def _hash_ids(flow_ids: np.ndarray, seed: int) -> np.ndarray:
    """Deterministic pseudo-random value in [0, 1) per flow id."""
    ids = flow_ids.astype(np.uint64)
    with np.errstate(over="ignore"):
        # Unsigned 64-bit wrap-around is intentional (splitmix64-style mixing).
        mixed = (ids + np.uint64(seed) * np.uint64(0x632BE59BD9B4E019)) * _HASH_MULTIPLIER
        mixed ^= mixed >> np.uint64(29)
        mixed *= np.uint64(0xBF58476D1CE4E5B9)
        mixed ^= mixed >> np.uint64(32)
    return (mixed % _HASH_MODULUS).astype(np.float64) / float(_HASH_MODULUS)


class HashFlowSampler(PacketSampler):
    """Keep every packet of a pseudo-randomly selected subset of flows.

    Parameters
    ----------
    rate:
        Fraction of flows to keep.
    seed:
        Seed of the flow hash; changing it selects a different subset.

    Notes
    -----
    The object-level entry point identifies the flow by the packet's
    5-tuple hash; the vectorised entry point uses the integer flow ids
    of the batch.  Both are deterministic for a given seed.
    """

    def __init__(self, rate: float, seed: int = 0) -> None:
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        self.rate = float(rate)
        self.seed = int(seed)
        kwargs: dict[str, object] = {"rate": self.rate}
        if self.seed:
            kwargs["seed"] = self.seed
        self.spec = format_spec("flow-hash", kwargs)
        self.name = self.spec

    @property
    def effective_rate(self) -> float:
        """Expected fraction of flows (and, on average, packets) kept."""
        return self.rate

    def sample_packet(self, packet: Packet) -> bool:
        """Keep/drop decision based on the packet's 5-tuple hash.

        Parameters
        ----------
        packet:
            The packet under consideration; only its 5-tuple matters.

        Returns
        -------
        bool
            True when the packet's flow hashes below the keep threshold.
        """
        flow_hash = np.asarray([hash(packet.five_tuple) & 0x7FFFFFFFFFFFFFFF], dtype=np.int64)
        return bool(_hash_ids(flow_hash, self.seed)[0] < self.rate)

    def sample_mask(self, batch: PacketBatch) -> np.ndarray:
        """Keep-mask for a batch, keyed on the batch's integer flow ids.

        Parameters
        ----------
        batch:
            The packets to decide on.

        Returns
        -------
        numpy.ndarray
            Boolean keep-mask; all packets of a flow share one decision,
            which is a pure function of (flow id, seed) and therefore
            invariant to chunking and stream order.
        """
        return _hash_ids(batch.flow_ids, self.seed) < self.rate


__all__ = ["HashFlowSampler"]
