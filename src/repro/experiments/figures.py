"""Per-figure experiment drivers.

Every figure of the paper's evaluation has a driver function here that
recomputes the data behind the figure and returns it as a
:class:`FigureResult` (analytical figures) or a
:class:`~repro.simulation.results.SimulationResult` (trace-driven
figures).  The benchmark harness in ``benchmarks/`` wraps these drivers
and prints the same series the paper plots.

The trace-driven drivers accept a ``scale`` parameter because the paper
works at backbone scale (tens of millions of packets per trace); the
default scale keeps a laptop run in seconds while preserving the shapes
of all distributions.  EXPERIMENTS.md records the scale used for the
reported numbers.  They also accept ``jobs`` to fan the independent
sampling runs out across worker processes (``repro figure fig12
--jobs 4``); parallel results are bit-identical to serial ones.

Drivers are looked up by figure id in :data:`ANALYTICAL_FIGURES` and
:data:`TRACE_FIGURES`:

>>> sorted(ANALYTICAL_FIGURES)[:3]
['fig01', 'fig02', 'fig03']
>>> sorted(TRACE_FIGURES)
['fig12', 'fig13', 'fig14', 'fig15', 'fig16']
>>> result = figure_03_gaussian_error(num_points=4, max_size=100)
>>> result.figure, result.x_values.size
('fig03', 4)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.detection import DetectionModel
from ..core.flow_size_model import FlowPopulation
from ..core.gaussian import gaussian_error_surface
from ..core.optimal_rate import optimal_rate_surface
from ..core.ranking import RankingModel
from ..pipeline import Pipeline
from ..simulation.results import SimulationResult
from .config import (
    BETA_SWEEP,
    DEFAULT_PARETO_SHAPE,
    DEFAULT_RATE_SWEEP,
    FIVE_TUPLE,
    PREFIX_24,
    TOP_T_SWEEP,
    TOTAL_FLOWS_FACTORS,
    FlowDefinitionParameters,
)

#: Default scale factor of the trace-driven experiments (fraction of the
#: Sprint backbone flow arrival rate).  0.02 keeps a full figure run in
#: tens of seconds on a laptop.
DEFAULT_TRACE_SCALE = 0.02

#: Default number of sampling runs for the trace-driven experiments.
#: The paper uses 30; 10 keeps benchmark runtimes reasonable while still
#: giving a meaningful standard deviation.
DEFAULT_TRACE_RUNS = 10


@dataclass
class FigureResult:
    """Data behind one analytical figure.

    Attributes
    ----------
    figure:
        Paper figure number ("fig04", ...).
    title:
        Short description of what the figure shows.
    x_label, y_label:
        Axis labels (the x axis is the packet sampling rate for the
        metric figures).
    x_values:
        The x axis values.
    series:
        Mapping from line label (e.g. ``"t = 10"``) to y values.
    extra:
        Any additional arrays (e.g. the grid of a surface figure).
    """

    figure: str
    title: str
    x_label: str
    y_label: str
    x_values: np.ndarray
    series: dict[str, np.ndarray] = field(default_factory=dict)
    extra: dict[str, np.ndarray] = field(default_factory=dict)

    def as_rows(self) -> list[dict[str, float | str]]:
        """Flatten the series into printable rows."""
        rows: list[dict[str, float | str]] = []
        for label, values in self.series.items():
            for x, y in zip(self.x_values, values):
                rows.append({"figure": self.figure, "series": label, "x": float(x), "y": float(y)})
        return rows


# ----------------------------------------------------------------------
# Figures 1-3: pairwise model
# ----------------------------------------------------------------------
def figure_01_optimal_rate_log(
    num_points: int = 30,
    max_size: int = 1000,
    target: float = 1e-3,
) -> FigureResult:
    """Fig. 1 — optimal sampling rate surface on a log-spaced size grid."""
    sizes = np.unique(np.round(np.logspace(0, np.log10(max_size), num_points)).astype(int))
    surface = optimal_rate_surface(sizes.astype(float), target=target, method="gaussian")
    return FigureResult(
        figure="fig01",
        title="Optimal sampling rate (log scale grid), target Pm = 0.1%",
        x_label="flow size S1 (packets)",
        y_label="optimal sampling rate (%)",
        x_values=sizes.astype(float),
        series={"diagonal (S1 = S2)": surface.diagonal() * 100.0},
        extra={"sizes": sizes.astype(float), "rates_percent": surface.rates_percent},
    )


def figure_02_optimal_rate_linear(
    num_points: int = 30,
    max_size: int = 1000,
    target: float = 1e-3,
) -> FigureResult:
    """Fig. 2 — optimal sampling rate surface on a linear size grid."""
    sizes = np.unique(np.linspace(1, max_size, num_points).round().astype(int))
    surface = optimal_rate_surface(sizes.astype(float), target=target, method="gaussian")
    # The paper reads this figure through fixed-gap slices (S2 = S1 + k):
    # the required rate *increases* with the absolute sizes.
    gap = max(1, max_size // 20)
    fixed_gap_rates = []
    for size in sizes:
        fixed_gap_rates.append(
            float(
                optimal_rate_surface(
                    np.array([float(size)]), np.array([float(size + gap)]), target=target
                ).rates[0, 0]
            )
        )
    return FigureResult(
        figure="fig02",
        title="Optimal sampling rate (linear grid), target Pm = 0.1%",
        x_label="flow size S1 (packets)",
        y_label="optimal sampling rate (%)",
        x_values=sizes.astype(float),
        series={f"S2 = S1 + {gap} packets": np.asarray(fixed_gap_rates) * 100.0},
        extra={"sizes": sizes.astype(float), "rates_percent": surface.rates_percent},
    )


def figure_03_gaussian_error(
    num_points: int = 25,
    max_size: int = 1000,
    sampling_rate: float = 0.01,
) -> FigureResult:
    """Fig. 3 — absolute error of the Gaussian approximation at p = 1%."""
    sizes = np.unique(np.round(np.logspace(0, np.log10(max_size), num_points)).astype(int))
    surface = gaussian_error_surface(sizes, sampling_rate)
    max_error_per_size = surface.errors.max(axis=1)
    return FigureResult(
        figure="fig03",
        title="Gaussian approximation absolute error, sampling rate 1%",
        x_label="flow size (packets)",
        y_label="max absolute error over partner sizes",
        x_values=sizes.astype(float),
        series={"max error": max_error_per_size},
        extra={"sizes": sizes.astype(float), "errors": surface.errors},
    )


# ----------------------------------------------------------------------
# Figures 4-9: ranking model sweeps
# ----------------------------------------------------------------------
def _ranking_sweep_by_t(
    definition: FlowDefinitionParameters,
    figure: str,
    rates: tuple[float, ...],
    top_t_values: tuple[int, ...],
    shape: float,
) -> FigureResult:
    distribution = definition.pareto(shape)
    population = FlowPopulation.from_distribution(distribution, definition.total_flows)
    result = FigureResult(
        figure=figure,
        title=f"Ranking top-t flows, {definition.name}, N = {definition.total_flows:,}, beta = {shape}",
        x_label="packet sampling rate (%)",
        y_label="average number of swapped flow pairs",
        x_values=np.asarray(rates) * 100.0,
    )
    for top_t in top_t_values:
        model = RankingModel(population, top_t)
        result.series[f"t = {top_t}"] = model.metric_curve(rates)
    return result


def figure_04_ranking_top_t_five_tuple(
    rates: tuple[float, ...] = DEFAULT_RATE_SWEEP,
    top_t_values: tuple[int, ...] = TOP_T_SWEEP,
) -> FigureResult:
    """Fig. 4 — ranking metric vs sampling rate for several t (5-tuple flows)."""
    return _ranking_sweep_by_t(FIVE_TUPLE, "fig04", rates, top_t_values, DEFAULT_PARETO_SHAPE)


def figure_05_ranking_top_t_prefix(
    rates: tuple[float, ...] = DEFAULT_RATE_SWEEP,
    top_t_values: tuple[int, ...] = TOP_T_SWEEP,
) -> FigureResult:
    """Fig. 5 — ranking metric vs sampling rate for several t (/24 prefix flows)."""
    return _ranking_sweep_by_t(PREFIX_24, "fig05", rates, top_t_values, DEFAULT_PARETO_SHAPE)


def _ranking_sweep_by_beta(
    definition: FlowDefinitionParameters,
    figure: str,
    rates: tuple[float, ...],
    betas: tuple[float, ...],
    top_t: int,
) -> FigureResult:
    result = FigureResult(
        figure=figure,
        title=f"Ranking top {top_t} flows, {definition.name}, varying Pareto shape",
        x_label="packet sampling rate (%)",
        y_label="average number of swapped flow pairs",
        x_values=np.asarray(rates) * 100.0,
    )
    for beta in betas:
        population = FlowPopulation.from_distribution(
            definition.pareto(beta), definition.total_flows
        )
        model = RankingModel(population, top_t)
        result.series[f"beta = {beta}"] = model.metric_curve(rates)
    return result


def figure_06_ranking_beta_five_tuple(
    rates: tuple[float, ...] = DEFAULT_RATE_SWEEP,
    betas: tuple[float, ...] = BETA_SWEEP,
    top_t: int = 10,
) -> FigureResult:
    """Fig. 6 — impact of the flow size distribution (5-tuple flows)."""
    return _ranking_sweep_by_beta(FIVE_TUPLE, "fig06", rates, betas, top_t)


def figure_07_ranking_beta_prefix(
    rates: tuple[float, ...] = DEFAULT_RATE_SWEEP,
    betas: tuple[float, ...] = BETA_SWEEP,
    top_t: int = 10,
) -> FigureResult:
    """Fig. 7 — impact of the flow size distribution (/24 prefix flows)."""
    return _ranking_sweep_by_beta(PREFIX_24, "fig07", rates, betas, top_t)


def _ranking_sweep_by_n(
    definition: FlowDefinitionParameters,
    figure: str,
    rates: tuple[float, ...],
    factors: tuple[float, ...],
    top_t: int,
    shape: float,
) -> FigureResult:
    result = FigureResult(
        figure=figure,
        title=f"Ranking top {top_t} flows, {definition.name}, varying total number of flows",
        x_label="packet sampling rate (%)",
        y_label="average number of swapped flow pairs",
        x_values=np.asarray(rates) * 100.0,
    )
    distribution = definition.pareto(shape)
    for factor in factors:
        total = definition.scaled_total_flows(factor)
        population = FlowPopulation.from_distribution(distribution, total)
        model = RankingModel(population, top_t)
        result.series[f"N = {total:,}"] = model.metric_curve(rates)
    return result


def figure_08_ranking_total_flows_five_tuple(
    rates: tuple[float, ...] = DEFAULT_RATE_SWEEP,
    factors: tuple[float, ...] = TOTAL_FLOWS_FACTORS,
    top_t: int = 10,
) -> FigureResult:
    """Fig. 8 — impact of the total number of flows (5-tuple flows)."""
    return _ranking_sweep_by_n(FIVE_TUPLE, "fig08", rates, factors, top_t, DEFAULT_PARETO_SHAPE)


def figure_09_ranking_total_flows_prefix(
    rates: tuple[float, ...] = DEFAULT_RATE_SWEEP,
    factors: tuple[float, ...] = TOTAL_FLOWS_FACTORS,
    top_t: int = 10,
) -> FigureResult:
    """Fig. 9 — impact of the total number of flows (/24 prefix flows)."""
    return _ranking_sweep_by_n(PREFIX_24, "fig09", rates, factors, top_t, DEFAULT_PARETO_SHAPE)


# ----------------------------------------------------------------------
# Figures 10-11: detection model sweeps
# ----------------------------------------------------------------------
def _detection_sweep_by_t(
    definition: FlowDefinitionParameters,
    figure: str,
    rates: tuple[float, ...],
    top_t_values: tuple[int, ...],
    shape: float,
) -> FigureResult:
    distribution = definition.pareto(shape)
    population = FlowPopulation.from_distribution(distribution, definition.total_flows)
    result = FigureResult(
        figure=figure,
        title=f"Detecting top-t flows, {definition.name}, N = {definition.total_flows:,}, beta = {shape}",
        x_label="packet sampling rate (%)",
        y_label="average number of swapped flow pairs",
        x_values=np.asarray(rates) * 100.0,
    )
    for top_t in top_t_values:
        model = DetectionModel(population, top_t)
        result.series[f"t = {top_t}"] = model.metric_curve(rates)
    return result


def figure_10_detection_top_t_five_tuple(
    rates: tuple[float, ...] = DEFAULT_RATE_SWEEP,
    top_t_values: tuple[int, ...] = TOP_T_SWEEP,
) -> FigureResult:
    """Fig. 10 — detection metric vs sampling rate for several t (5-tuple flows)."""
    return _detection_sweep_by_t(FIVE_TUPLE, "fig10", rates, top_t_values, DEFAULT_PARETO_SHAPE)


def figure_11_detection_top_t_prefix(
    rates: tuple[float, ...] = DEFAULT_RATE_SWEEP,
    top_t_values: tuple[int, ...] = TOP_T_SWEEP,
) -> FigureResult:
    """Fig. 11 — detection metric vs sampling rate for several t (/24 prefix flows)."""
    return _detection_sweep_by_t(PREFIX_24, "fig11", rates, top_t_values, DEFAULT_PARETO_SHAPE)


# ----------------------------------------------------------------------
# Figures 12-16: trace-driven simulations
# ----------------------------------------------------------------------
def _trace_simulation(
    prefix_flows: bool,
    bin_duration: float,
    scale: float,
    num_runs: int,
    seed: int,
    trace_duration: float,
    abilene: bool = False,
    rates: tuple[float, ...] = (0.001, 0.01, 0.1, 0.5),
    top_t: int = 10,
    jobs: int | None = None,
) -> SimulationResult:
    pipeline = (
        Pipeline()
        .with_trace("abilene" if abilene else "sprint", scale=scale, duration=trace_duration)
        .with_sampling_rates(rates)
        .with_key_policy("prefix" if prefix_flows else "five-tuple")
        .with_bin_duration(bin_duration)
        .with_top(top_t)
        .with_runs(num_runs)
        .with_seed(seed)
        .streaming()
    )
    return pipeline.run(jobs=jobs).to_simulation_result()


def figure_12_trace_ranking_five_tuple(
    bin_duration: float = 60.0,
    scale: float = DEFAULT_TRACE_SCALE,
    num_runs: int = DEFAULT_TRACE_RUNS,
    seed: int = 12,
    trace_duration: float = 1800.0,
    jobs: int | None = None,
) -> SimulationResult:
    """Fig. 12 — trace-driven ranking of the top 10 flows (5-tuple)."""
    return _trace_simulation(False, bin_duration, scale, num_runs, seed, trace_duration, jobs=jobs)


def figure_13_trace_ranking_prefix(
    bin_duration: float = 60.0,
    scale: float = DEFAULT_TRACE_SCALE,
    num_runs: int = DEFAULT_TRACE_RUNS,
    seed: int = 13,
    trace_duration: float = 1800.0,
    jobs: int | None = None,
) -> SimulationResult:
    """Fig. 13 — trace-driven ranking of the top 10 flows (/24 prefix)."""
    return _trace_simulation(True, bin_duration, scale, num_runs, seed, trace_duration, jobs=jobs)


def figure_14_trace_detection_five_tuple(
    bin_duration: float = 60.0,
    scale: float = DEFAULT_TRACE_SCALE,
    num_runs: int = DEFAULT_TRACE_RUNS,
    seed: int = 14,
    trace_duration: float = 1800.0,
    jobs: int | None = None,
) -> SimulationResult:
    """Fig. 14 — trace-driven detection of the top 10 flows (5-tuple)."""
    return _trace_simulation(False, bin_duration, scale, num_runs, seed, trace_duration, jobs=jobs)


def figure_15_trace_detection_prefix(
    bin_duration: float = 60.0,
    scale: float = DEFAULT_TRACE_SCALE,
    num_runs: int = DEFAULT_TRACE_RUNS,
    seed: int = 15,
    trace_duration: float = 1800.0,
    jobs: int | None = None,
) -> SimulationResult:
    """Fig. 15 — trace-driven detection of the top 10 flows (/24 prefix)."""
    return _trace_simulation(True, bin_duration, scale, num_runs, seed, trace_duration, jobs=jobs)


def figure_16_trace_ranking_abilene(
    bin_duration: float = 60.0,
    scale: float = DEFAULT_TRACE_SCALE,
    num_runs: int = DEFAULT_TRACE_RUNS,
    seed: int = 16,
    trace_duration: float = 1800.0,
    jobs: int | None = None,
) -> SimulationResult:
    """Fig. 16 — trace-driven ranking on an Abilene-like short-tailed trace."""
    return _trace_simulation(
        False,
        bin_duration,
        scale,
        num_runs,
        seed,
        trace_duration,
        abilene=True,
        rates=(0.001, 0.01, 0.1, 0.8),
        jobs=jobs,
    )


#: Registry used by the benchmark harness and the report generator.
ANALYTICAL_FIGURES = {
    "fig01": figure_01_optimal_rate_log,
    "fig02": figure_02_optimal_rate_linear,
    "fig03": figure_03_gaussian_error,
    "fig04": figure_04_ranking_top_t_five_tuple,
    "fig05": figure_05_ranking_top_t_prefix,
    "fig06": figure_06_ranking_beta_five_tuple,
    "fig07": figure_07_ranking_beta_prefix,
    "fig08": figure_08_ranking_total_flows_five_tuple,
    "fig09": figure_09_ranking_total_flows_prefix,
    "fig10": figure_10_detection_top_t_five_tuple,
    "fig11": figure_11_detection_top_t_prefix,
}

TRACE_FIGURES = {
    "fig12": figure_12_trace_ranking_five_tuple,
    "fig13": figure_13_trace_ranking_prefix,
    "fig14": figure_14_trace_detection_five_tuple,
    "fig15": figure_15_trace_detection_prefix,
    "fig16": figure_16_trace_ranking_abilene,
}

__all__ = [
    "FigureResult",
    "ANALYTICAL_FIGURES",
    "TRACE_FIGURES",
    "DEFAULT_TRACE_SCALE",
    "DEFAULT_TRACE_RUNS",
    "figure_01_optimal_rate_log",
    "figure_02_optimal_rate_linear",
    "figure_03_gaussian_error",
    "figure_04_ranking_top_t_five_tuple",
    "figure_05_ranking_top_t_prefix",
    "figure_06_ranking_beta_five_tuple",
    "figure_07_ranking_beta_prefix",
    "figure_08_ranking_total_flows_five_tuple",
    "figure_09_ranking_total_flows_prefix",
    "figure_10_detection_top_t_five_tuple",
    "figure_11_detection_top_t_prefix",
    "figure_12_trace_ranking_five_tuple",
    "figure_13_trace_ranking_prefix",
    "figure_14_trace_detection_five_tuple",
    "figure_15_trace_detection_prefix",
    "figure_16_trace_ranking_abilene",
]
