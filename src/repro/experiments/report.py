"""Text rendering of experiment results.

The benchmark harness and the examples use these helpers to print the
series behind each figure in a compact, paper-comparable form: one row
per (series, sampling rate) with the metric value and whether it passes
the paper's "fewer than one swapped pair" criterion.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..pipeline.result import PipelineResult
from ..simulation.results import SimulationResult
from .figures import FigureResult


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))


def render_figure_result(result: FigureResult, max_points: int = 8) -> str:
    """Render an analytical figure's series as an aligned text table."""
    lines = [f"{result.figure}: {result.title}", f"x axis: {result.x_label}"]
    indices = np.linspace(0, result.x_values.size - 1, min(max_points, result.x_values.size))
    indices = np.unique(indices.astype(int))
    header = ["series"] + [f"{result.x_values[i]:.3g}" for i in indices]
    widths = [max(24, len(header[0]))] + [10] * (len(header) - 1)
    lines.append(_format_row(header, widths))
    for label, values in result.series.items():
        row = [label] + [f"{values[i]:.3g}" for i in indices]
        lines.append(_format_row(row, widths))
    return "\n".join(lines)


def render_simulation_result(result: SimulationResult) -> str:
    """Render a trace-driven simulation result as an aligned text table."""
    lines = [
        (
            f"trace simulation: {result.flow_definition}, bin = {result.bin_duration:.0f}s, "
            f"top {result.top_t} flows, {result.num_runs} runs, "
            f"{result.flows_per_bin:.0f} flows/bin"
        )
    ]
    header = ["problem", "rate", "mean swapped pairs", "mean+std < 1 (bins %)"]
    widths = [10, 8, 20, 22]
    lines.append(_format_row(header, widths))
    for problem, store in (("ranking", result.ranking), ("detection", result.detection)):
        for rate in sorted(store):
            series = store[rate]
            lines.append(
                _format_row(
                    [
                        problem,
                        f"{rate * 100:.3g}%",
                        f"{series.overall_mean:.3g}",
                        f"{series.fraction_of_bins_acceptable() * 100:.0f}%",
                    ],
                    widths,
                )
            )
    return "\n".join(lines)


def render_pipeline_result(result: PipelineResult) -> str:
    """Render a pipeline result as an aligned text table (one row per sampler)."""
    mode = "streamed" if result.streamed else "materialised"
    lines = [
        (
            f"pipeline run ({mode}): {result.flow_definition}, "
            f"bin = {result.bin_duration:.0f}s, top {result.top_t} flows, "
            f"{result.num_runs} runs, {result.flows_per_bin:.0f} flows/bin, "
            f"{result.total_packets:,} packets"
        )
    ]
    if result.scenario:
        lines.append(f"scenario: {result.scenario} — {result.source}")
    if result.monitor:
        bound = "unbounded" if result.max_flows is None else f"max_flows = {result.max_flows:,}"
        evictions = ", ".join(
            f"{label}: {np.mean(runs):.1f}" for label, runs in result.evictions.items()
        )
        lines.append(
            f"monitor-in-the-loop ({bound}); mean evictions per run: "
            f"{evictions if evictions else 'n/a'}"
        )
    header = ["problem", "sampler", "rate", "mean swapped pairs", "mean+std < 1 (bins %)"]
    widths = [10, 24, 8, 20, 22]
    lines.append(_format_row(header, widths))
    for problem, store in (("ranking", result.ranking), ("detection", result.detection)):
        for summary in result.samplers:
            series = store.get(summary.label)
            if series is None:
                continue
            lines.append(
                _format_row(
                    [
                        problem,
                        summary.label,
                        f"{summary.effective_rate * 100:.3g}%",
                        f"{series.overall_mean:.3g}",
                        f"{series.fraction_of_bins_acceptable() * 100:.0f}%",
                    ],
                    widths,
                )
            )
    return "\n".join(lines)


def acceptable_rate_threshold(result: FigureResult, series_label: str) -> float | None:
    """Smallest sampled rate (in %) at which a series drops below one swapped pair.

    Returns ``None`` when the series never reaches the acceptance
    threshold within the sweep — the situation the paper highlights for
    large t or light-tailed distributions.
    """
    if series_label not in result.series:
        raise KeyError(f"unknown series {series_label!r}")
    values = result.series[series_label]
    below = np.flatnonzero(values < 1.0)
    if below.size == 0:
        return None
    return float(result.x_values[below[0]])


__all__ = [
    "render_figure_result",
    "render_simulation_result",
    "render_pipeline_result",
    "acceptable_rate_threshold",
]
