"""Text rendering of experiment results.

The benchmark harness and the examples use these helpers to print the
series behind each figure in a compact, paper-comparable form: one row
per (series, sampling rate) with the metric value and whether it passes
the paper's "fewer than one swapped pair" criterion.

Rendering is **deterministic across serialisation**: a result reloaded
from the experiment store (``PipelineResult.from_dict(r.to_dict())``)
renders character-identical to the live result — row order follows the
result's sampler list (preserved by the round trip) and every float is
formatted through the same helpers on both paths.  The sweep renderers
(:func:`render_sweep_status`, :func:`render_sweep_watch`,
:func:`render_sweep_leaderboard`,
:func:`render_sweep_comparison`) print the aggregate tables behind
``repro sweep status|report``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..pipeline.result import PipelineResult
from ..simulation.results import SimulationResult
from .figures import FigureResult


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))


def _fmt(value: float, spec: str = ".3g") -> str:
    """Format one metric value deterministically.

    Coercing through ``float`` first makes the output independent of
    whether the value is a NumPy scalar (live result) or a plain float
    (result reloaded from the store) — the store round-trip tests pin
    this equality.
    """
    return format(float(value), spec)


def render_figure_result(result: FigureResult, max_points: int = 8) -> str:
    """Render an analytical figure's series as an aligned text table."""
    lines = [f"{result.figure}: {result.title}", f"x axis: {result.x_label}"]
    indices = np.linspace(0, result.x_values.size - 1, min(max_points, result.x_values.size))
    indices = np.unique(indices.astype(int))
    header = ["series"] + [f"{result.x_values[i]:.3g}" for i in indices]
    widths = [max(24, len(header[0]))] + [10] * (len(header) - 1)
    lines.append(_format_row(header, widths))
    for label, values in result.series.items():
        row = [label] + [f"{values[i]:.3g}" for i in indices]
        lines.append(_format_row(row, widths))
    return "\n".join(lines)


def render_simulation_result(result: SimulationResult) -> str:
    """Render a trace-driven simulation result as an aligned text table."""
    lines = [
        (
            f"trace simulation: {result.flow_definition}, bin = {result.bin_duration:.0f}s, "
            f"top {result.top_t} flows, {result.num_runs} runs, "
            f"{result.flows_per_bin:.0f} flows/bin"
        )
    ]
    header = ["problem", "rate", "mean swapped pairs", "mean+std < 1 (bins %)"]
    widths = [10, 8, 20, 22]
    lines.append(_format_row(header, widths))
    for problem, store in (("ranking", result.ranking), ("detection", result.detection)):
        for rate in sorted(store):
            series = store[rate]
            lines.append(
                _format_row(
                    [
                        problem,
                        f"{rate * 100:.3g}%",
                        f"{series.overall_mean:.3g}",
                        f"{series.fraction_of_bins_acceptable() * 100:.0f}%",
                    ],
                    widths,
                )
            )
    return "\n".join(lines)


def render_pipeline_result(result: PipelineResult) -> str:
    """Render a pipeline result as an aligned text table (one row per sampler).

    Deterministic across the store round trip: a result rebuilt with
    :meth:`PipelineResult.from_dict
    <repro.pipeline.result.PipelineResult.from_dict>` renders the exact
    same text as the live result (same row order — the sampler list is
    preserved — and same float formatting via :func:`_fmt`).
    """
    mode = "streamed" if result.streamed else "materialised"
    lines = [
        (
            f"pipeline run ({mode}): {result.flow_definition}, "
            f"bin = {_fmt(result.bin_duration, '.0f')}s, top {result.top_t} flows, "
            f"{result.num_runs} runs, {_fmt(result.flows_per_bin, '.0f')} flows/bin, "
            f"{int(result.total_packets):,} packets"
        )
    ]
    if result.scenario:
        lines.append(f"scenario: {result.scenario} — {result.source}")
    if result.monitor:
        bound = (
            "unbounded" if result.max_flows is None else f"max_flows = {int(result.max_flows):,}"
        )
        evictions = ", ".join(
            f"{label}: {_fmt(np.mean(runs), '.1f')}" for label, runs in result.evictions.items()
        )
        lines.append(
            f"monitor-in-the-loop ({bound}); mean evictions per run: "
            f"{evictions if evictions else 'n/a'}"
        )
    header = ["problem", "sampler", "rate", "mean swapped pairs", "mean+std < 1 (bins %)"]
    widths = [10, 24, 8, 20, 22]
    lines.append(_format_row(header, widths))
    for problem, store in (("ranking", result.ranking), ("detection", result.detection)):
        for summary in result.samplers:
            series = store.get(summary.label)
            if series is None:
                continue
            lines.append(
                _format_row(
                    [
                        problem,
                        summary.label,
                        f"{_fmt(summary.effective_rate * 100)}%",
                        _fmt(series.overall_mean),
                        f"{_fmt(series.fraction_of_bins_acceptable() * 100, '.0f')}%",
                    ],
                    widths,
                )
            )
    return "\n".join(lines)


def render_sweep_status(status: dict) -> str:
    """Render a :func:`repro.sweep.sweep_status` dict as a cell table."""
    lines = [
        (
            f"sweep: {status['cached']}/{status['total']} cells cached, "
            f"{status['missing']} missing"
        ),
        _format_row(["cell", "key", "state", "spec"], [6, 26, 8, 40]),
    ]
    for index, (key, cached, spec) in enumerate(status["cells"]):
        source = spec.scenario if spec.scenario is not None else (spec.trace or "sprint")
        description = f"{source} | {spec.samplers[0]} | seed={spec.seed}"
        lines.append(
            _format_row(
                [str(index), key, "cached" if cached else "missing", description],
                [6, 26, 8, 40],
            )
        )
    return "\n".join(lines)


def render_sweep_watch(status: dict) -> str:
    """Render a :func:`repro.sweep.worker_status` dict as a live cell table.

    One row per grid cell with its lease lifecycle state (``done`` /
    ``leased`` / ``orphaned`` / ``pending``), the owning worker and the
    lease's remaining seconds — the body of ``repro sweep watch``.
    When workers have published heartbeat telemetry files, a per-worker
    block follows with live throughput (cells/s) and cache-hit counts.
    """
    lines = [
        (
            f"sweep: {status['done']}/{status['total']} done | "
            f"{status['leased']} leased, {status['orphaned']} orphaned, "
            f"{status['pending']} pending"
        ),
        _format_row(["cell", "key", "state", "owner", "ttl", "spec"], [6, 26, 9, 24, 8, 40]),
    ]
    workers = status.get("workers") or []
    if workers:
        worker_lines = [
            "workers:",
            _format_row(
                ["owner", "done", "cells/s", "cache hits", "skipped", "elapsed"],
                [28, 6, 9, 11, 8, 10],
            ),
        ]
        for worker in workers:
            rate = worker.get("cells_per_s")
            worker_lines.append(
                _format_row(
                    [
                        str(worker.get("owner", "-")),
                        str(worker.get("cells_done", 0)),
                        "-" if rate is None else f"{rate:.2f}",
                        str(worker.get("cache_hits", 0)),
                        str(worker.get("skipped", 0)),
                        f"{worker.get('elapsed_s', 0.0):.1f}s",
                    ],
                    [28, 6, 9, 11, 8, 10],
                )
            )
        lines[1:1] = worker_lines + [""]
    for index, row in enumerate(status["cells"]):
        spec = row["spec"]
        source = spec.scenario if spec.scenario is not None else (spec.trace or "sprint")
        description = f"{source} | {spec.samplers[0]} | seed={spec.seed}"
        remaining = "-" if row["remaining"] is None else f"{row['remaining']:.1f}s"
        lines.append(
            _format_row(
                [str(index), row["key"], row["state"], row["owner"] or "-", remaining, description],
                [6, 26, 9, 24, 8, 40],
            )
        )
    return "\n".join(lines)


def render_sweep_leaderboard(rows: Sequence[dict]) -> str:
    """Render :func:`repro.sweep.leaderboard_rows` as per-source tables.

    One block per source (scenario or trace), samplers ranked by mean
    swapped pairs ascending — the best sampler of each workload first.
    """
    if not rows:
        return "sweep leaderboard: no stored cells (run `repro sweep run` first)"
    problem = rows[0]["problem"]
    lines = [f"sweep leaderboard ({problem}, mean over seeds; lower is better)"]
    header = ["rank", "sampler", "rate", "mean swapped pairs", "mean+std < 1 (bins %)"]
    widths = [5, 28, 8, 20, 22]
    current_source = None
    for row in rows:
        if row["source"] != current_source:
            current_source = row["source"]
            lines.append(f"\n{current_source} ({row['num_seeds']} seed(s)):")
            lines.append(_format_row(header, widths))
        lines.append(
            _format_row(
                [
                    str(row["rank"]),
                    row["sampler"],
                    f"{_fmt(row['rate'] * 100)}%",
                    _fmt(row["mean_swapped_pairs"]),
                    f"{_fmt(row['fraction_bins_acceptable'] * 100, '.0f')}%",
                ],
                widths,
            )
        )
    return "\n".join(lines)


def render_sweep_comparison(rows: Sequence[dict]) -> str:
    """Render :func:`repro.sweep.comparison_rows`: deltas vs a baseline sweep.

    Negative deltas mean this sweep beats the baseline (fewer swapped
    pairs); cells the baseline store does not contain show ``n/a``.
    """
    if not rows:
        return "sweep comparison: no stored cells (run `repro sweep run` first)"
    problem = rows[0]["problem"]
    lines = [f"sweep comparison vs baseline ({problem}; delta < 0 means better)"]
    header = ["source", "sampler", "seed", "mean", "baseline", "delta"]
    widths = [20, 28, 6, 10, 10, 10]
    lines.append(_format_row(header, widths))
    for row in rows:
        baseline = row["baseline_mean_swapped_pairs"]
        lines.append(
            _format_row(
                [
                    row["source"],
                    row["sampler"],
                    str(row["seed"]),
                    _fmt(row["mean_swapped_pairs"]),
                    "n/a" if baseline is None else _fmt(baseline),
                    "n/a" if row["delta"] is None else _fmt(row["delta"], "+.3g"),
                ],
                widths,
            )
        )
    return "\n".join(lines)


def acceptable_rate_threshold(result: FigureResult, series_label: str) -> float | None:
    """Smallest sampled rate (in %) at which a series drops below one swapped pair.

    Returns ``None`` when the series never reaches the acceptance
    threshold within the sweep — the situation the paper highlights for
    large t or light-tailed distributions.
    """
    if series_label not in result.series:
        raise KeyError(f"unknown series {series_label!r}")
    values = result.series[series_label]
    below = np.flatnonzero(values < 1.0)
    if below.size == 0:
        return None
    return float(result.x_values[below[0]])


__all__ = [
    "render_figure_result",
    "render_simulation_result",
    "render_pipeline_result",
    "render_sweep_status",
    "render_sweep_watch",
    "render_sweep_leaderboard",
    "render_sweep_comparison",
    "acceptable_rate_threshold",
]
