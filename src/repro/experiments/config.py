"""Paper parameter sets used by the per-figure experiment drivers.

All numbers come from Section 6 of the paper (which itself takes them
from measurements of the Sprint IP backbone published in [1]):

* 5-tuple flows: mean size 4.8 KB (9.6 packets of 500 bytes), flow
  arrival rate 2360 flows/s, hence N = 0.7 M flows per 5-minute
  measurement interval;
* /24 destination-prefix flows: mean size 16.6 KB (33.2 packets), 350
  prefixes/s, hence N = 0.1 M flows per 5-minute interval;
* Pareto flow size distribution with shape 1.5 unless stated otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..distributions.pareto import ParetoFlowSizes
from ..flows.packets import DEFAULT_PACKET_SIZE_BYTES

#: Mean flow sizes in packets for the two flow definitions.
FIVE_TUPLE_MEAN_PACKETS = 4800.0 / DEFAULT_PACKET_SIZE_BYTES
PREFIX_MEAN_PACKETS = 16600.0 / DEFAULT_PACKET_SIZE_BYTES

#: Total number of flows in a 5-minute measurement interval.
FIVE_TUPLE_TOTAL_FLOWS = 700_000
PREFIX_TOTAL_FLOWS = 100_000

#: Default Pareto shape used by the paper.
DEFAULT_PARETO_SHAPE = 1.5

#: Values of the top-t sweep (Figs. 4, 5, 10, 11).
TOP_T_SWEEP = (1, 2, 5, 10, 25)

#: Values of the Pareto shape sweep (Figs. 6, 7).
BETA_SWEEP = (3.0, 2.5, 2.0, 1.5, 1.2)

#: Multipliers of the N sweep (Figs. 8, 9).
TOTAL_FLOWS_FACTORS = (0.2, 0.5, 1.0, 2.5, 4.0, 5.0)

#: Sampling-rate sweep of the analytical figures (0.1% to 50%).
DEFAULT_RATE_SWEEP = tuple(np.logspace(np.log10(0.001), np.log10(0.5), 25))


@dataclass(frozen=True)
class FlowDefinitionParameters:
    """Model parameters attached to one flow definition."""

    name: str
    mean_packets: float
    total_flows: int

    def pareto(self, shape: float = DEFAULT_PARETO_SHAPE) -> ParetoFlowSizes:
        """Pareto flow size distribution with the definition's mean size."""
        return ParetoFlowSizes.from_mean(mean=self.mean_packets, shape=shape)

    def scaled_total_flows(self, factor: float) -> int:
        """Total number of flows after applying an N-sweep factor."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return max(2, int(round(self.total_flows * factor)))


FIVE_TUPLE = FlowDefinitionParameters(
    name="5-tuple",
    mean_packets=FIVE_TUPLE_MEAN_PACKETS,
    total_flows=FIVE_TUPLE_TOTAL_FLOWS,
)

PREFIX_24 = FlowDefinitionParameters(
    name="/24 destination prefix",
    mean_packets=PREFIX_MEAN_PACKETS,
    total_flows=PREFIX_TOTAL_FLOWS,
)


__all__ = [
    "FlowDefinitionParameters",
    "FIVE_TUPLE",
    "PREFIX_24",
    "FIVE_TUPLE_MEAN_PACKETS",
    "PREFIX_MEAN_PACKETS",
    "FIVE_TUPLE_TOTAL_FLOWS",
    "PREFIX_TOTAL_FLOWS",
    "DEFAULT_PARETO_SHAPE",
    "TOP_T_SWEEP",
    "BETA_SWEEP",
    "TOTAL_FLOWS_FACTORS",
    "DEFAULT_RATE_SWEEP",
]
