"""Command-line interface.

Seven subcommands cover the workflows the library supports:

* ``run`` — run an arbitrary pipeline built from registry specs
  (``repro run --sampler bernoulli:rate=0.01 --trace sprint --bin 60
  --top 10``); ``--scenario burst:factor=20`` streams a named workload
  from the scenario registry instead of a plain trace; ``--store DIR``
  caches the result in (and reuses it from) a persistent experiment
  store, ``--json PATH`` dumps the full result as JSON, and
  ``--telemetry [PATH.json]`` captures a metrics/spans snapshot of the
  run (see ``docs/observability.md``);
* ``sweep`` — resumable grid sweeps over a store: ``repro sweep run``
  executes the missing cells of a (source x sampler x rate x seed)
  grid (``--workers N`` drains it with N crash-safe, lease-coordinated
  worker processes), ``repro sweep status`` shows coverage,
  ``repro sweep watch`` is the live per-cell lease view of a running
  (possibly distributed) sweep, and ``repro sweep report`` prints
  per-scenario sampler leaderboards and deltas against a baseline
  sweep;
* ``store`` — experiment-store maintenance: ``repro store ls`` lists
  the cached runs, ``repro store verify`` checks every artifact
  against the cache-key contract (and reports stale worker leases),
  ``repro store gc`` reconciles the index and removes stale artifacts
  and expired leases;
* ``scenarios`` — list the named workload scenarios and their
  parameters (``repro scenarios``);
* ``figure`` — regenerate the data behind one figure of the paper and
  print it as a text table (``repro figure fig04``);
* ``plan`` — compute the sampling rate required to rank or detect the
  top-t flows of a link (``repro plan --flows 700000 --top 10``);
* ``simulate`` — run the paper's trace-driven Bernoulli sweep on a
  synthetic Sprint-like or Abilene-like trace
  (``repro simulate --scale 0.01``).

``repro run --monitor [max_flows=N]`` switches ``run`` to the
monitor-in-the-loop evaluation: each sampler's packets feed a real
bounded flow table (smallest-flow eviction) and the reported metrics
include the bounded-memory error; eviction counts are printed per
sampler.

Component specs use the ``name:key=value,key=value`` syntax of
:func:`repro.registry.parse_spec`; ``repro run --list-components``
prints every registered name.  ``run``, ``figure`` and ``simulate``
accept ``--jobs N`` to fan the independent sampling runs out across
``N`` worker processes (results are bit-identical to a serial run for
the same seed).  Run ``python -m repro --help`` for the full option
list; ``docs/cli.md`` is the complete reference with examples.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
import time
from collections.abc import Sequence
from pathlib import Path

from . import telemetry
from .analysis import cli as analysis_cli
from .core.flow_size_model import FlowPopulation
from .core.rate_planning import required_sampling_rate
from .distributions.pareto import ParetoFlowSizes
from .experiments.figures import ANALYTICAL_FIGURES, TRACE_FIGURES
from .experiments.report import (
    render_figure_result,
    render_pipeline_result,
    render_simulation_result,
    render_sweep_comparison,
    render_sweep_leaderboard,
    render_sweep_status,
    render_sweep_watch,
)
from .pipeline import DEFAULT_CHUNK_PACKETS, Pipeline
from .registry import (
    DISTRIBUTIONS,
    KEY_POLICIES,
    SAMPLERS,
    TRACES,
    UnknownComponentError,
    format_spec,
    parse_kwargs,
    parse_spec,
)
from .scenarios import SCENARIOS
from .store import RunSpec, RunStore
from .sweep import (
    DEFAULT_LEASE_TTL,
    SweepGrid,
    collect,
    comparison_rows,
    leaderboard_rows,
    run_sweep,
    run_sweep_workers,
    sweep_status,
    worker_status,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ranking flows from sampled traffic — reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run", help="run a pipeline built from registry component specs"
    )
    run.add_argument(
        "--trace",
        default=None,
        help="trace spec, e.g. sprint or abilene:sigma=1.2 (default sprint; "
        "see --list-components)",
    )
    run.add_argument(
        "--scenario",
        default=None,
        metavar="SPEC",
        help="stream a named workload instead of a plain trace, e.g. "
        "burst:factor=20 or multilink:links=4 (see `repro scenarios`); "
        "conflicts with --trace",
    )
    run.add_argument(
        "--sampler",
        action="append",
        default=None,
        metavar="SPEC",
        help="sampler spec, e.g. bernoulli:rate=0.01 (repeatable; default bernoulli:rate=0.01)",
    )
    run.add_argument(
        "--key",
        default="five-tuple",
        help="flow-key policy spec, e.g. five-tuple or prefix:prefix_length=24",
    )
    run.add_argument("--scale", type=float, default=0.01, help="fraction of backbone flow rate")
    run.add_argument("--duration", type=float, default=600.0, help="trace duration in seconds")
    run.add_argument("--bin", type=float, default=60.0, help="measurement interval in seconds")
    run.add_argument("--top", type=int, default=10, help="number of top flows")
    run.add_argument("--runs", type=int, default=5, help="sampling runs per sampler")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--chunk-packets",
        type=int,
        default=None,
        help=f"streaming chunk size in packets (default {DEFAULT_CHUNK_PACKETS})",
    )
    run.add_argument(
        "--materialised",
        action="store_true",
        help="expand the whole packet trace in memory instead of streaming",
    )
    run.add_argument(
        "--monitor",
        nargs="?",
        const="",
        default=None,
        metavar="K=V,...",
        help="evaluate through the monitor-in-the-loop flow-accounting engine; "
        "optionally bound its flow memory, e.g. --monitor max_flows=4096 "
        "(evictions are reported per sampler)",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the independent sampling runs "
        "(default: auto — parallel only when the workload is large; 1 forces serial)",
    )
    run.add_argument("--csv", metavar="PATH", help="also write a per-bin CSV to PATH")
    run.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="persistent experiment store: reuse the result when this exact run "
        "is already cached there, persist it otherwise (see `repro store`)",
    )
    run.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the full result (PipelineResult.to_dict) as JSON to PATH",
    )
    run.add_argument(
        "--telemetry",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH.json",
        help="enable telemetry for this run and print the registry snapshot "
        "(schema repro-telemetry/1: counters, gauges, histograms, spans) "
        "after the result, or write it to PATH.json; results are "
        "bit-identical with or without this flag and it never enters the "
        "store key",
    )
    run.add_argument(
        "--list-components",
        action="store_true",
        help="print the registered component names and exit",
    )

    sweep = subparsers.add_parser(
        "sweep", help="resumable grid sweeps backed by the experiment store"
    )
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)
    sweep_run = sweep_sub.add_parser(
        "run", help="execute the missing cells of a sweep grid into a store"
    )
    sweep_run.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes per cell (default: auto)",
    )
    sweep_run.add_argument(
        "--max-cells", type=int, default=None, metavar="K",
        help="execute at most K missing cells, then stop (resume later with "
        "the same command; used by the CI kill-and-resume smoke test)",
    )
    sweep_run.add_argument(
        "--array-format", choices=("json", "npz"), default="json",
        help="artifact format for newly stored results (default json)",
    )
    sweep_run.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="drain the grid with N uncoordinated worker processes sharing "
        "the store via leases (crash-safe: re-run to resume); default is the "
        "single-process orchestrator",
    )
    sweep_run.add_argument(
        "--ttl", type=float, default=DEFAULT_LEASE_TTL, metavar="S",
        help="lease time-to-live in seconds for --workers; a crashed "
        f"worker's cells are reclaimable after S seconds (default {DEFAULT_LEASE_TTL:g})",
    )
    sweep_status_parser = sweep_sub.add_parser(
        "status", help="show which cells of the grid are cached vs missing"
    )
    sweep_watch = sweep_sub.add_parser(
        "watch", help="live per-cell lease view of a (possibly distributed) sweep"
    )
    sweep_watch.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="seconds between refreshes (default 2)",
    )
    sweep_watch.add_argument(
        "--once", action="store_true",
        help="print one snapshot and exit instead of refreshing until done",
    )
    sweep_report = sweep_sub.add_parser(
        "report", help="per-source sampler leaderboard (and deltas vs a baseline sweep)"
    )
    sweep_report.add_argument(
        "--problem", choices=("ranking", "detection"), default="ranking",
        help="which metric family to aggregate (default ranking)",
    )
    sweep_report.add_argument(
        "--baseline-store", metavar="DIR", default=None,
        help="a second store swept with the same grid; the report adds "
        "per-cell metric deltas against it",
    )
    for sweep_parser in (sweep_run, sweep_status_parser, sweep_watch, sweep_report):
        _add_grid_arguments(sweep_parser)

    store = subparsers.add_parser("store", help="experiment-store maintenance")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_ls = store_sub.add_parser("ls", help="list the cached runs (index only)")
    store_verify = store_sub.add_parser(
        "verify", help="check every artifact against the cache-key contract"
    )
    store_gc = store_sub.add_parser(
        "gc", help="reconcile the index and remove stale or unreadable artifacts"
    )
    for store_parser in (store_ls, store_verify, store_gc):
        store_parser.add_argument(
            "--store", metavar="DIR", required=True, help="store directory"
        )

    subparsers.add_parser(
        "scenarios", help="list the named workload scenarios and their parameters"
    )

    lint = subparsers.add_parser(
        "lint", help="run the reprolint contract linter (see docs/analysis.md)"
    )
    analysis_cli.configure_parser(lint)

    figure = subparsers.add_parser("figure", help="regenerate one figure of the paper")
    figure.add_argument(
        "name",
        choices=sorted(list(ANALYTICAL_FIGURES) + list(TRACE_FIGURES)),
        help="figure identifier (fig01..fig16)",
    )
    figure.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for trace-driven figures (fig12..fig16); "
        "ignored by the analytical figures",
    )

    plan = subparsers.add_parser("plan", help="required sampling rate for a link profile")
    plan.add_argument("--flows", type=int, default=700_000, help="flows per measurement interval")
    plan.add_argument("--top", type=int, default=10, help="number of top flows of interest")
    plan.add_argument("--mean-packets", type=float, default=9.6, help="mean flow size in packets")
    plan.add_argument("--shape", type=float, default=1.5, help="Pareto shape of the flow sizes")
    plan.add_argument(
        "--target", type=float, default=1.0, help="accuracy target (average swapped pairs)"
    )

    simulate = subparsers.add_parser("simulate", help="trace-driven sampling simulation")
    simulate.add_argument("--trace", choices=("sprint", "abilene"), default="sprint")
    simulate.add_argument("--scale", type=float, default=0.01, help="fraction of backbone flow rate")
    simulate.add_argument("--duration", type=float, default=600.0, help="trace duration in seconds")
    simulate.add_argument("--bin", type=float, default=60.0, help="measurement interval in seconds")
    simulate.add_argument("--top", type=int, default=10, help="number of top flows")
    simulate.add_argument("--runs", type=int, default=5, help="sampling runs per rate")
    simulate.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=[0.001, 0.01, 0.1, 0.5],
        help="packet sampling rates to evaluate",
    )
    simulate.add_argument("--prefix", action="store_true", help="use the /24 prefix flow definition")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the independent sampling runs (default: auto)",
    )
    return parser


def _fold_source_defaults(spec: str, args: argparse.Namespace) -> str:
    """Fold the ``--scale``/``--duration`` flags into a source spec as defaults.

    An explicit value inside the spec (e.g. ``burst:duration=300``)
    wins over the flag, exactly as documented for ``repro run``.
    """
    name, kwargs = parse_spec(spec)
    kwargs.setdefault("scale", args.scale)
    kwargs.setdefault("duration", args.duration)
    return format_spec(name, kwargs)


def _add_grid_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared sweep-grid flags of ``repro sweep run|status|report``."""
    parser.add_argument(
        "--store", metavar="DIR", required=True,
        help="experiment store directory holding the sweep's cells",
    )
    parser.add_argument(
        "--scenario", action="append", default=None, metavar="SPEC",
        help="scenario spec for the source axis (repeatable; conflicts with --trace)",
    )
    parser.add_argument(
        "--trace", action="append", default=None, metavar="SPEC",
        help="trace spec for the source axis (repeatable; default sprint)",
    )
    parser.add_argument(
        "--sampler", action="append", default=None, metavar="SPEC",
        help="sampler spec for the sampler axis (repeatable; default bernoulli)",
    )
    parser.add_argument(
        "--rates", type=float, nargs="+", default=None, metavar="R",
        help="sampling rates composed into each sampler spec as rate=R",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=[0], metavar="S",
        help="pipeline seeds, one cell per seed (default 0)",
    )
    parser.add_argument("--key", default="five-tuple", help="flow-key policy spec")
    parser.add_argument("--scale", type=float, default=0.01, help="fraction of backbone flow rate")
    parser.add_argument("--duration", type=float, default=600.0, help="trace duration in seconds")
    parser.add_argument("--bin", type=float, default=60.0, help="measurement interval in seconds")
    parser.add_argument("--top", type=int, default=10, help="number of top flows")
    parser.add_argument("--runs", type=int, default=5, help="sampling runs per cell")


def _grid_of(args: argparse.Namespace) -> SweepGrid:
    """Build the :class:`SweepGrid` described by the sweep subcommand flags.

    ``--scale``/``--duration`` are folded into every source spec as
    defaults — an explicit value inside the spec wins, exactly as in
    ``repro run``.
    """

    def _resolved(specs: list[str] | None) -> tuple[str, ...]:
        return tuple(_fold_source_defaults(spec, args) for spec in specs or [])

    if args.scenario and args.trace:
        raise ValueError("--scenario and --trace are mutually exclusive")
    return SweepGrid(
        scenarios=_resolved(args.scenario),
        traces=_resolved(args.trace if args.trace or args.scenario else ["sprint"]),
        samplers=tuple(args.sampler) if args.sampler else ("bernoulli:rate=0.01",),
        rates=tuple(args.rates) if args.rates else (),
        seeds=tuple(args.seeds),
        key=args.key,
        bin_duration=args.bin,
        top_t=args.top,
        num_runs=args.runs,
    )


def _run_sweep_cli(args: argparse.Namespace) -> str:
    grid = _grid_of(args)
    if args.sweep_command == "run":
        store = RunStore(args.store, array_format=args.array_format)
        events: list[str] = []

        def progress(event: str, index: int, total: int, spec: RunSpec) -> None:
            if event == "run":
                source = spec.scenario if spec.scenario is not None else spec.trace
                events.append(
                    f"  cell {index + 1}/{total}: {source} | {spec.samplers[0]} "
                    f"| seed={spec.seed}"
                )

        if args.workers is not None:
            if args.max_cells is not None:
                raise ValueError(
                    "--max-cells interrupts the single-process orchestrator and "
                    "does not combine with --workers (kill a worker instead; "
                    "leases make the sweep resumable)"
                )
            worker_report = run_sweep_workers(
                grid,
                store,
                args.workers,
                ttl=args.ttl,
                parallel="auto" if args.jobs is not None else "serial",
                jobs=args.jobs,
            )
            lines = [
                f"sweep over {worker_report.total} cells into {args.store} "
                f"with {worker_report.workers} worker(s)"
            ]
            if worker_report.degraded is not None:
                lines.append(f"  {worker_report.degraded}")
            if worker_report.exitcodes:
                codes = ", ".join(str(code) for code in worker_report.exitcodes)
                lines.append(f"  worker exit codes: {codes}")
            lines.append(
                f"{worker_report.completed}/{worker_report.total} cell(s) in the store"
            )
            lines.append(
                "sweep complete"
                if worker_report.complete
                else "sweep incomplete — re-run the same command to resume"
            )
            return "\n".join(lines)
        report = run_sweep(
            grid, store, jobs=args.jobs, max_cells=args.max_cells, progress=progress
        )
        lines = [f"sweep over {report.total} cells into {args.store}"]
        lines.extend(events)
        lines.append(
            f"executed {len(report.executed)} cell(s), reused {len(report.cached)} "
            f"cached cell(s)"
        )
        if report.interrupted:
            remaining = report.total - len(report.executed) - len(report.cached)
            lines.append(
                f"stopped at --max-cells {args.max_cells}; {remaining} cell(s) "
                "remain — re-run the same command to resume"
            )
        else:
            lines.append("sweep complete")
        return "\n".join(lines)
    store = RunStore(args.store)
    if args.sweep_command == "status":
        return render_sweep_status(sweep_status(grid, store))
    if args.sweep_command == "watch":
        status = worker_status(grid, store)
        if not args.once:
            while status["done"] < status["total"]:
                print(render_sweep_watch(status), flush=True)
                time.sleep(args.interval)
                status = worker_status(grid, store)
        return render_sweep_watch(status)
    if args.sweep_command == "report":
        runs = collect(grid, store, strict=False)
        text = render_sweep_leaderboard(leaderboard_rows(runs, problem=args.problem))
        missing = len(grid.cells()) - len(runs)
        if missing:
            text += f"\n({missing} cell(s) not in the store yet — partial report)"
        if args.baseline_store is not None:
            baseline = RunStore(args.baseline_store)
            text += "\n\n" + render_sweep_comparison(
                comparison_rows(runs, baseline, problem=args.problem)
            )
        return text
    raise ValueError(f"unknown sweep command {args.sweep_command!r}")


def _run_store_cli(args: argparse.Namespace) -> str:
    root = Path(args.store)
    if root.exists() and not root.is_dir():
        raise NotADirectoryError(f"--store {args.store!r} exists but is not a directory")
    store = RunStore(args.store)
    if args.store_command == "ls":
        entries = store.list()
        lines = [f"{args.store}: {len(entries)} stored run(s)"]
        for key, spec in entries:
            source = spec.scenario if spec.scenario is not None else (spec.trace or "sprint")
            lines.append(
                f"  {key}  {source} | {', '.join(spec.samplers)} | seed={spec.seed} "
                f"| bin={spec.bin_duration:g}s top={spec.top_t} runs={spec.num_runs}"
            )
        return "\n".join(lines)
    if args.store_command == "verify":
        report = store.verify()
        lines = [
            f"{args.store}: checked {report.checked} entr(ies), {report.ok} ok, "
            f"{len(report.issues)} issue(s)"
        ]
        lines.extend(f"  {key}: {problem}" for key, problem in report.issues)
        return "\n".join(lines)
    if args.store_command == "gc":
        summary = store.gc()
        lines = [
            f"{args.store}: removed {len(summary['removed'])}, "
            f"reindexed {len(summary['reindexed'])}, "
            f"reaped {len(summary['reaped_leases'])} lease(s), kept {summary['kept']}"
        ]
        lines.extend(f"  removed {key}" for key in summary["removed"])
        lines.extend(f"  reaped lease {key}" for key in summary["reaped_leases"])
        return "\n".join(lines)
    raise ValueError(f"unknown store command {args.store_command!r}")


def _list_components() -> str:
    lines = ["registered components (name:key=value,... specs):"]
    for title, registry in (
        ("samplers", SAMPLERS),
        ("flow-key policies", KEY_POLICIES),
        ("distributions", DISTRIBUTIONS),
        ("traces", TRACES),
        ("scenarios", SCENARIOS),
    ):
        lines.append(f"  {title}: {', '.join(registry.names())}")
    return "\n".join(lines)


def _list_scenarios() -> str:
    """Render the scenario registry: name, parameters, one-line description."""
    lines = ["named workload scenarios (run with `repro run --scenario name:key=value,...`):"]
    for name in SCENARIOS.names():
        factory = SCENARIOS.get(name)
        parameters = [
            parameter.name
            if parameter.default is inspect.Parameter.empty
            else f"{parameter.name}={parameter.default!r}"
            for parameter in inspect.signature(factory).parameters.values()
            if parameter.name != "rng" and parameter.kind is not inspect.Parameter.VAR_KEYWORD
        ]
        doc_lines = (inspect.getdoc(factory) or "").splitlines()
        summary = doc_lines[0] if doc_lines else "(no description)"
        lines.append(f"  {name}({', '.join(parameters)})")
        lines.append(f"      {summary}")
    return "\n".join(lines)


def _run_pipeline(args: argparse.Namespace) -> str:
    if args.list_components:
        return _list_components()
    # Everything that determines the numbers is folded into one RunSpec
    # first, and the executed pipeline is derived *from* it — so the
    # store key and the computation can never drift apart.
    trace_spec: str | None = None
    scenario_spec: str | None = None
    if args.scenario is not None:
        if args.trace is not None:
            raise ValueError("--scenario and --trace are mutually exclusive")
        # --scale/--duration are defaults; an explicit value inside the
        # --scenario spec (e.g. burst:duration=300) wins.
        scenario_spec = _fold_source_defaults(args.scenario, args)
    else:
        # Same precedence for the --trace spec (e.g. sprint:scale=0.05).
        trace_spec = _fold_source_defaults(args.trace or "sprint", args)
    max_flows = None
    monitor = args.monitor is not None
    if monitor:
        options = parse_kwargs(args.monitor)
        unknown = set(options) - {"max_flows"}
        if unknown:
            raise ValueError(
                f"unknown --monitor option(s) {sorted(unknown)}; expected max_flows=N"
            )
        max_flows = options.get("max_flows")

    run_spec = RunSpec(
        samplers=tuple(args.sampler) if args.sampler else ("bernoulli:rate=0.01",),
        trace=trace_spec,
        scenario=scenario_spec,
        key=args.key,
        bin_duration=args.bin,
        top_t=args.top,
        num_runs=args.runs,
        seed=args.seed,
        monitor=monitor,
        max_flows=max_flows,
    )
    pipeline = run_spec.build_pipeline()
    # Execution-only knobs (bit-identical results by contract, hence
    # not part of the spec) layer on top of the derived pipeline.
    if args.materialised:
        if args.chunk_packets is not None:
            raise ValueError("--chunk-packets conflicts with --materialised")
        pipeline.materialised()
    else:
        pipeline.streaming(
            DEFAULT_CHUNK_PACKETS if args.chunk_packets is None else args.chunk_packets
        )
    store = RunStore(args.store) if args.store is not None else None

    def _execute() -> tuple[object, bool]:
        if store is not None:
            stored = store.get(run_spec)
            if stored is not None:
                return stored.result, True
            executed = pipeline.run(jobs=args.jobs)
            store.put(run_spec, executed)
            return executed, False
        return pipeline.run(jobs=args.jobs), False

    # --telemetry is an observation knob, not an experiment parameter:
    # it never reaches the RunSpec above, and the executed numbers are
    # bit-identical either way (asserted in the test suite).
    snapshot: dict | None = None
    if args.telemetry is not None:
        with telemetry.use_telemetry():
            result, cached = _execute()
            snapshot = telemetry.snapshot()
    else:
        result, cached = _execute()
    text = render_pipeline_result(result)
    if store is not None:
        state = "loaded from" if cached else "stored in"
        text += f"\n{state} {args.store} (key {store.key_of(run_spec)})"
    if args.json:
        Path(args.json).write_text(json.dumps(result.to_dict(), indent=2) + "\n")
        text += f"\nwrote result JSON to {args.json}"
    if args.csv:
        result.to_csv(args.csv)
        text += f"\nwrote per-bin CSV to {args.csv}"
    if snapshot is not None:
        rendered = json.dumps(snapshot, indent=2, sort_keys=True)
        if args.telemetry == "-":
            text += f"\ntelemetry snapshot ({telemetry.SCHEMA}):\n{rendered}"
        else:
            Path(args.telemetry).write_text(rendered + "\n")
            text += f"\nwrote telemetry snapshot to {args.telemetry}"
    return text


def _run_figure(name: str, jobs: int | None = None) -> str:
    if name in ANALYTICAL_FIGURES:
        return render_figure_result(ANALYTICAL_FIGURES[name]())
    driver = TRACE_FIGURES[name]
    return render_simulation_result(driver(jobs=jobs))


def _run_plan(args: argparse.Namespace) -> str:
    distribution = ParetoFlowSizes.from_mean(mean=args.mean_packets, shape=args.shape)
    population = FlowPopulation.from_distribution(distribution, total_flows=args.flows)
    lines = [
        f"link profile: {args.flows:,} flows/interval, Pareto(shape={args.shape}), "
        f"mean {args.mean_packets} packets",
        f"accuracy target: fewer than {args.target} swapped pairs on average",
    ]
    for problem in ("detection", "ranking"):
        plan = required_sampling_rate(
            population, args.top, problem, target_swapped_pairs=args.target
        )
        rate_text = f"{plan.required_rate:.2%}" if plan.feasible else "not achievable"
        lines.append(f"  {problem:<10} top {args.top:>3} flows -> required sampling rate {rate_text}")
    return "\n".join(lines)


def _run_simulate(args: argparse.Namespace) -> str:
    pipeline = (
        Pipeline()
        .with_trace(args.trace, scale=args.scale, duration=args.duration)
        .with_sampling_rates(tuple(args.rates))
        .with_key_policy("prefix" if args.prefix else "five-tuple")
        .with_bin_duration(args.bin)
        .with_top(args.top)
        .with_runs(args.runs)
        .with_seed(args.seed)
        .streaming()
    )
    return render_simulation_result(pipeline.run(jobs=args.jobs).to_simulation_result())


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro`` console script."""
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        try:
            output = _run_pipeline(args)
        except (UnknownComponentError, ValueError, TypeError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    elif args.command == "sweep":
        try:
            output = _run_sweep_cli(args)
        except (UnknownComponentError, ValueError, TypeError, KeyError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    elif args.command == "store":
        try:
            output = _run_store_cli(args)
        except (UnknownComponentError, ValueError, TypeError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    elif args.command == "scenarios":
        output = _list_scenarios()
    elif args.command == "lint":
        return analysis_cli.run(args)
    elif args.command == "figure":
        output = _run_figure(args.name, jobs=args.jobs)
    elif args.command == "plan":
        output = _run_plan(args)
    elif args.command == "simulate":
        output = _run_simulate(args)
    else:  # pragma: no cover - argparse enforces the choices
        raise ValueError(f"unknown command {args.command!r}")
    print(output)
    return 0


__all__ = ["main"]
