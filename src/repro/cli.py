"""Command-line interface.

Five subcommands cover the workflows the library supports:

* ``run`` — run an arbitrary pipeline built from registry specs
  (``repro run --sampler bernoulli:rate=0.01 --trace sprint --bin 60
  --top 10``); ``--scenario burst:factor=20`` streams a named workload
  from the scenario registry instead of a plain trace;
* ``scenarios`` — list the named workload scenarios and their
  parameters (``repro scenarios``);
* ``figure`` — regenerate the data behind one figure of the paper and
  print it as a text table (``repro figure fig04``);
* ``plan`` — compute the sampling rate required to rank or detect the
  top-t flows of a link (``repro plan --flows 700000 --top 10``);
* ``simulate`` — run the paper's trace-driven Bernoulli sweep on a
  synthetic Sprint-like or Abilene-like trace
  (``repro simulate --scale 0.01``).

``repro run --monitor [max_flows=N]`` switches ``run`` to the
monitor-in-the-loop evaluation: each sampler's packets feed a real
bounded flow table (smallest-flow eviction) and the reported metrics
include the bounded-memory error; eviction counts are printed per
sampler.

Component specs use the ``name:key=value,key=value`` syntax of
:func:`repro.registry.parse_spec`; ``repro run --list-components``
prints every registered name.  ``run``, ``figure`` and ``simulate``
accept ``--jobs N`` to fan the independent sampling runs out across
``N`` worker processes (results are bit-identical to a serial run for
the same seed).  Run ``python -m repro --help`` for the full option
list; ``docs/cli.md`` is the complete reference with examples.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from collections.abc import Sequence

from .core.flow_size_model import FlowPopulation
from .core.rate_planning import required_sampling_rate
from .distributions.pareto import ParetoFlowSizes
from .experiments.figures import ANALYTICAL_FIGURES, TRACE_FIGURES
from .experiments.report import (
    render_figure_result,
    render_pipeline_result,
    render_simulation_result,
)
from .pipeline import DEFAULT_CHUNK_PACKETS, Pipeline
from .registry import (
    DISTRIBUTIONS,
    KEY_POLICIES,
    SAMPLERS,
    TRACES,
    UnknownComponentError,
    parse_kwargs,
    parse_spec,
)
from .scenarios import SCENARIOS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ranking flows from sampled traffic — reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run", help="run a pipeline built from registry component specs"
    )
    run.add_argument(
        "--trace",
        default=None,
        help="trace spec, e.g. sprint or abilene:sigma=1.2 (default sprint; "
        "see --list-components)",
    )
    run.add_argument(
        "--scenario",
        default=None,
        metavar="SPEC",
        help="stream a named workload instead of a plain trace, e.g. "
        "burst:factor=20 or multilink:links=4 (see `repro scenarios`); "
        "conflicts with --trace",
    )
    run.add_argument(
        "--sampler",
        action="append",
        default=None,
        metavar="SPEC",
        help="sampler spec, e.g. bernoulli:rate=0.01 (repeatable; default bernoulli:rate=0.01)",
    )
    run.add_argument(
        "--key",
        default="five-tuple",
        help="flow-key policy spec, e.g. five-tuple or prefix:prefix_length=24",
    )
    run.add_argument("--scale", type=float, default=0.01, help="fraction of backbone flow rate")
    run.add_argument("--duration", type=float, default=600.0, help="trace duration in seconds")
    run.add_argument("--bin", type=float, default=60.0, help="measurement interval in seconds")
    run.add_argument("--top", type=int, default=10, help="number of top flows")
    run.add_argument("--runs", type=int, default=5, help="sampling runs per sampler")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--chunk-packets",
        type=int,
        default=None,
        help=f"streaming chunk size in packets (default {DEFAULT_CHUNK_PACKETS})",
    )
    run.add_argument(
        "--materialised",
        action="store_true",
        help="expand the whole packet trace in memory instead of streaming",
    )
    run.add_argument(
        "--monitor",
        nargs="?",
        const="",
        default=None,
        metavar="K=V,...",
        help="evaluate through the monitor-in-the-loop flow-accounting engine; "
        "optionally bound its flow memory, e.g. --monitor max_flows=4096 "
        "(evictions are reported per sampler)",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the independent sampling runs "
        "(default: auto — parallel only when the workload is large; 1 forces serial)",
    )
    run.add_argument("--csv", metavar="PATH", help="also write a per-bin CSV to PATH")
    run.add_argument(
        "--list-components",
        action="store_true",
        help="print the registered component names and exit",
    )

    subparsers.add_parser(
        "scenarios", help="list the named workload scenarios and their parameters"
    )

    figure = subparsers.add_parser("figure", help="regenerate one figure of the paper")
    figure.add_argument(
        "name",
        choices=sorted(list(ANALYTICAL_FIGURES) + list(TRACE_FIGURES)),
        help="figure identifier (fig01..fig16)",
    )
    figure.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for trace-driven figures (fig12..fig16); "
        "ignored by the analytical figures",
    )

    plan = subparsers.add_parser("plan", help="required sampling rate for a link profile")
    plan.add_argument("--flows", type=int, default=700_000, help="flows per measurement interval")
    plan.add_argument("--top", type=int, default=10, help="number of top flows of interest")
    plan.add_argument("--mean-packets", type=float, default=9.6, help="mean flow size in packets")
    plan.add_argument("--shape", type=float, default=1.5, help="Pareto shape of the flow sizes")
    plan.add_argument(
        "--target", type=float, default=1.0, help="accuracy target (average swapped pairs)"
    )

    simulate = subparsers.add_parser("simulate", help="trace-driven sampling simulation")
    simulate.add_argument("--trace", choices=("sprint", "abilene"), default="sprint")
    simulate.add_argument("--scale", type=float, default=0.01, help="fraction of backbone flow rate")
    simulate.add_argument("--duration", type=float, default=600.0, help="trace duration in seconds")
    simulate.add_argument("--bin", type=float, default=60.0, help="measurement interval in seconds")
    simulate.add_argument("--top", type=int, default=10, help="number of top flows")
    simulate.add_argument("--runs", type=int, default=5, help="sampling runs per rate")
    simulate.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=[0.001, 0.01, 0.1, 0.5],
        help="packet sampling rates to evaluate",
    )
    simulate.add_argument("--prefix", action="store_true", help="use the /24 prefix flow definition")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the independent sampling runs (default: auto)",
    )
    return parser


def _list_components() -> str:
    lines = ["registered components (name:key=value,... specs):"]
    for title, registry in (
        ("samplers", SAMPLERS),
        ("flow-key policies", KEY_POLICIES),
        ("distributions", DISTRIBUTIONS),
        ("traces", TRACES),
        ("scenarios", SCENARIOS),
    ):
        lines.append(f"  {title}: {', '.join(registry.names())}")
    return "\n".join(lines)


def _list_scenarios() -> str:
    """Render the scenario registry: name, parameters, one-line description."""
    lines = ["named workload scenarios (run with `repro run --scenario name:key=value,...`):"]
    for name in SCENARIOS.names():
        factory = SCENARIOS.get(name)
        parameters = [
            parameter.name
            if parameter.default is inspect.Parameter.empty
            else f"{parameter.name}={parameter.default!r}"
            for parameter in inspect.signature(factory).parameters.values()
            if parameter.name != "rng" and parameter.kind is not inspect.Parameter.VAR_KEYWORD
        ]
        doc_lines = (inspect.getdoc(factory) or "").splitlines()
        summary = doc_lines[0] if doc_lines else "(no description)"
        lines.append(f"  {name}({', '.join(parameters)})")
        lines.append(f"      {summary}")
    return "\n".join(lines)


def _run_pipeline(args: argparse.Namespace) -> str:
    if args.list_components:
        return _list_components()
    pipeline = (
        Pipeline()
        .with_key_policy(args.key)
        .with_bin_duration(args.bin)
        .with_top(args.top)
        .with_runs(args.runs)
        .with_seed(args.seed)
    )
    if args.scenario is not None:
        if args.trace is not None:
            raise ValueError("--scenario and --trace are mutually exclusive")
        # --scale/--duration are defaults; an explicit value inside the
        # --scenario spec (e.g. burst:duration=300) wins.
        scenario_name, scenario_kwargs = parse_spec(args.scenario)
        scenario_kwargs.setdefault("scale", args.scale)
        scenario_kwargs.setdefault("duration", args.duration)
        pipeline.with_scenario(scenario_name, **scenario_kwargs)
    else:
        # Same precedence for the --trace spec (e.g. sprint:scale=0.05).
        trace_name, trace_kwargs = parse_spec(args.trace or "sprint")
        trace_kwargs.setdefault("scale", args.scale)
        trace_kwargs.setdefault("duration", args.duration)
        pipeline.with_trace(trace_name, **trace_kwargs)
    for spec in args.sampler if args.sampler else ["bernoulli:rate=0.01"]:
        pipeline.with_sampler(spec)
    if args.materialised:
        if args.chunk_packets is not None:
            raise ValueError("--chunk-packets conflicts with --materialised")
        pipeline.materialised()
    else:
        pipeline.streaming(
            DEFAULT_CHUNK_PACKETS if args.chunk_packets is None else args.chunk_packets
        )
    if args.monitor is not None:
        options = parse_kwargs(args.monitor)
        unknown = set(options) - {"max_flows"}
        if unknown:
            raise ValueError(
                f"unknown --monitor option(s) {sorted(unknown)}; expected max_flows=N"
            )
        pipeline.with_monitor(options.get("max_flows"))
    result = pipeline.run(jobs=args.jobs)
    text = render_pipeline_result(result)
    if args.csv:
        result.to_csv(args.csv)
        text += f"\nwrote per-bin CSV to {args.csv}"
    return text


def _run_figure(name: str, jobs: int | None = None) -> str:
    if name in ANALYTICAL_FIGURES:
        return render_figure_result(ANALYTICAL_FIGURES[name]())
    driver = TRACE_FIGURES[name]
    return render_simulation_result(driver(jobs=jobs))


def _run_plan(args: argparse.Namespace) -> str:
    distribution = ParetoFlowSizes.from_mean(mean=args.mean_packets, shape=args.shape)
    population = FlowPopulation.from_distribution(distribution, total_flows=args.flows)
    lines = [
        f"link profile: {args.flows:,} flows/interval, Pareto(shape={args.shape}), "
        f"mean {args.mean_packets} packets",
        f"accuracy target: fewer than {args.target} swapped pairs on average",
    ]
    for problem in ("detection", "ranking"):
        plan = required_sampling_rate(
            population, args.top, problem, target_swapped_pairs=args.target
        )
        rate_text = f"{plan.required_rate:.2%}" if plan.feasible else "not achievable"
        lines.append(f"  {problem:<10} top {args.top:>3} flows -> required sampling rate {rate_text}")
    return "\n".join(lines)


def _run_simulate(args: argparse.Namespace) -> str:
    pipeline = (
        Pipeline()
        .with_trace(args.trace, scale=args.scale, duration=args.duration)
        .with_sampling_rates(tuple(args.rates))
        .with_key_policy("prefix" if args.prefix else "five-tuple")
        .with_bin_duration(args.bin)
        .with_top(args.top)
        .with_runs(args.runs)
        .with_seed(args.seed)
        .streaming()
    )
    return render_simulation_result(pipeline.run(jobs=args.jobs).to_simulation_result())


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro`` console script."""
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        try:
            output = _run_pipeline(args)
        except (UnknownComponentError, ValueError, TypeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    elif args.command == "scenarios":
        output = _list_scenarios()
    elif args.command == "figure":
        output = _run_figure(args.name, jobs=args.jobs)
    elif args.command == "plan":
        output = _run_plan(args)
    elif args.command == "simulate":
        output = _run_simulate(args)
    else:  # pragma: no cover - argparse enforces the choices
        raise ValueError(f"unknown command {args.command!r}")
    print(output)
    return 0


__all__ = ["main"]
