"""Command-line interface.

Three subcommands cover the workflows the library supports:

* ``figure`` — regenerate the data behind one figure of the paper and
  print it as a text table (``repro figure fig04``);
* ``plan`` — compute the sampling rate required to rank or detect the
  top-t flows of a link (``repro plan --flows 700000 --top 10``);
* ``simulate`` — run a trace-driven sampling simulation on a synthetic
  Sprint-like or Abilene-like trace (``repro simulate --scale 0.01``).

Run ``python -m repro --help`` for the full option list.
"""

from __future__ import annotations

import argparse
from collections.abc import Sequence

from .core.flow_size_model import FlowPopulation
from .core.rate_planning import required_sampling_rate
from .distributions.pareto import ParetoFlowSizes
from .experiments.figures import ANALYTICAL_FIGURES, TRACE_FIGURES
from .experiments.report import render_figure_result, render_simulation_result
from .flows.keys import DestinationPrefixKeyPolicy, FiveTupleKeyPolicy
from .simulation.runner import SimulationConfig, run_trace_simulation
from .traces.synthetic import SyntheticTraceGenerator, abilene_like_config, sprint_like_config


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ranking flows from sampled traffic — reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    figure = subparsers.add_parser("figure", help="regenerate one figure of the paper")
    figure.add_argument(
        "name",
        choices=sorted(list(ANALYTICAL_FIGURES) + list(TRACE_FIGURES)),
        help="figure identifier (fig01..fig16)",
    )

    plan = subparsers.add_parser("plan", help="required sampling rate for a link profile")
    plan.add_argument("--flows", type=int, default=700_000, help="flows per measurement interval")
    plan.add_argument("--top", type=int, default=10, help="number of top flows of interest")
    plan.add_argument("--mean-packets", type=float, default=9.6, help="mean flow size in packets")
    plan.add_argument("--shape", type=float, default=1.5, help="Pareto shape of the flow sizes")
    plan.add_argument(
        "--target", type=float, default=1.0, help="accuracy target (average swapped pairs)"
    )

    simulate = subparsers.add_parser("simulate", help="trace-driven sampling simulation")
    simulate.add_argument("--trace", choices=("sprint", "abilene"), default="sprint")
    simulate.add_argument("--scale", type=float, default=0.01, help="fraction of backbone flow rate")
    simulate.add_argument("--duration", type=float, default=600.0, help="trace duration in seconds")
    simulate.add_argument("--bin", type=float, default=60.0, help="measurement interval in seconds")
    simulate.add_argument("--top", type=int, default=10, help="number of top flows")
    simulate.add_argument("--runs", type=int, default=5, help="sampling runs per rate")
    simulate.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=[0.001, 0.01, 0.1, 0.5],
        help="packet sampling rates to evaluate",
    )
    simulate.add_argument("--prefix", action="store_true", help="use the /24 prefix flow definition")
    simulate.add_argument("--seed", type=int, default=0)
    return parser


def _run_figure(name: str) -> str:
    if name in ANALYTICAL_FIGURES:
        return render_figure_result(ANALYTICAL_FIGURES[name]())
    driver = TRACE_FIGURES[name]
    return render_simulation_result(driver())


def _run_plan(args: argparse.Namespace) -> str:
    distribution = ParetoFlowSizes.from_mean(mean=args.mean_packets, shape=args.shape)
    population = FlowPopulation.from_distribution(distribution, total_flows=args.flows)
    lines = [
        f"link profile: {args.flows:,} flows/interval, Pareto(shape={args.shape}), "
        f"mean {args.mean_packets} packets",
        f"accuracy target: fewer than {args.target} swapped pairs on average",
    ]
    for problem in ("detection", "ranking"):
        plan = required_sampling_rate(
            population, args.top, problem, target_swapped_pairs=args.target
        )
        rate_text = f"{plan.required_rate:.2%}" if plan.feasible else "not achievable"
        lines.append(f"  {problem:<10} top {args.top:>3} flows -> required sampling rate {rate_text}")
    return "\n".join(lines)


def _run_simulate(args: argparse.Namespace) -> str:
    if args.trace == "sprint":
        trace_config = sprint_like_config(scale=args.scale, duration=args.duration)
    else:
        trace_config = abilene_like_config(scale=args.scale, duration=args.duration)
    trace = SyntheticTraceGenerator(trace_config).generate(rng=args.seed)
    key_policy = DestinationPrefixKeyPolicy(24) if args.prefix else FiveTupleKeyPolicy()
    config = SimulationConfig(
        bin_duration=args.bin,
        top_t=args.top,
        sampling_rates=tuple(args.rates),
        num_runs=args.runs,
        key_policy=key_policy,
        seed=args.seed,
    )
    return render_simulation_result(run_trace_simulation(trace, config))


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro`` console script."""
    args = _build_parser().parse_args(argv)
    if args.command == "figure":
        output = _run_figure(args.name)
    elif args.command == "plan":
        output = _run_plan(args)
    elif args.command == "simulate":
        output = _run_simulate(args)
    else:  # pragma: no cover - argparse enforces the choices
        raise ValueError(f"unknown command {args.command!r}")
    print(output)
    return 0


__all__ = ["main"]
