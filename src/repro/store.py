"""Persistent, content-addressed store of pipeline results.

The paper's results are *grids*: ranking/detection quality swept over
sampling rate, flow definition, bin duration, scenario and seed.  Every
``repro run`` used to recompute its cell from scratch and discard the
output; this module gives runs a durable home so sweeps become
incremental.

Two pieces:

* :class:`RunSpec` — the canonical, fully-resolved description of one
  run (source spec, sampler specs, key policy, bins, seed, monitor
  settings).  Everything that determines the run's numbers is in the
  spec; everything that does not (chunk size, execution backend — both
  bit-identical by the executor's contracts) is deliberately *not*.
* :class:`RunStore` — a directory of JSON/NPZ artifacts keyed by
  :func:`store_key`, a stable hash of the canonical spec plus a
  code-version salt.  ``get``/``put``/``list``/``verify``/``gc`` cover
  the cache workflows; an ``index.json`` makes listing cheap.

The cache-key contract
----------------------
``store_key(spec)`` hashes the JSON of ``spec.canonical().to_dict()``
with sorted keys, salted with :data:`STORE_SALT` (store format version
plus the library version).  Consequences:

* the same spec hashes identically in every process and for every
  dict-key or spec-argument ordering (``canonical_spec`` sorts spec
  kwargs, ``sort_keys`` sorts the JSON);
* changing **any** field that affects the numbers changes the key;
* results computed by a different library version are never reused —
  a version bump invalidates the cache rather than silently mixing
  numerics.

>>> spec = RunSpec(samplers=("bernoulli:rate=0.5",), trace="sprint:duration=120,scale=0.002",
...                num_runs=2, seed=0)
>>> spec.canonical() == RunSpec.from_dict(spec.to_dict()).canonical()
True
>>> store_key(spec) == store_key(spec.canonical())
True

Layout on disk::

    <root>/
      index.json           # {"salt": ..., "entries": {key: spec dict}}
      index.lock           # flock target serialising index merges
      runs/<key>.json      # {"key", "salt", "spec", "result"}
      runs/<key>.npz       # large arrays, when array_format="npz"
      leases/<key>.json    # in-flight claim: {"key", "owner", "deadline"}

Leases are the distribution primitive: ``claim`` lets N uncoordinated
worker processes drain one sweep with no coordination channel beyond
this directory (see :mod:`repro.sweep`).  A lease is an *advisory*
claim with a deadline — completed artifacts always win over leases,
and an expired lease (a crashed worker) is reclaimable by anyone.

See ``docs/sweeps.md`` for the full contract and the resumable sweep
orchestrator built on top (:mod:`repro.sweep`).
"""

from __future__ import annotations

import contextlib
import hashlib
import io
import json
import os
import time
from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass, field, replace
from pathlib import Path

try:  # POSIX-only; the index merge loop degrades gracefully without it
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

import numpy as np

from . import __version__, telemetry
from .pipeline.pipeline import Pipeline
from .pipeline.result import PipelineResult
from .spec import canonical_spec

#: Store format version — bump when the on-disk layout or the key
#: derivation changes incompatibly.
STORE_FORMAT = 1

#: Salt mixed into every store key: ties cached results to both the
#: store format and the code version that produced them.
STORE_SALT = f"repro-store/{STORE_FORMAT}/repro/{__version__}"


@dataclass(frozen=True)
class RunSpec:
    """Canonical description of one pipeline run — the unit the store keys.

    Exactly one of ``trace`` / ``scenario`` names the packet source (as
    a registry spec string); ``samplers`` is the tuple of sampler specs
    evaluated against it.  All fields are spec strings or plain numbers,
    so a ``RunSpec`` is JSON-serialisable, hashable and buildable from
    a config file or CLI flags.

    Fields that do **not** affect the computed numbers (streaming chunk
    size, execution backend, worker count) are intentionally absent:
    the executor guarantees bit-identical results across them, so they
    must not fragment the cache.
    """

    samplers: tuple[str, ...]
    trace: str | None = None
    scenario: str | None = None
    key: str = "five-tuple"
    bin_duration: float = 60.0
    top_t: int = 10
    num_runs: int = 5
    seed: int = 0
    monitor: bool = False
    max_flows: int | None = None

    def __post_init__(self) -> None:
        if isinstance(self.samplers, str):
            object.__setattr__(self, "samplers", (self.samplers,))
        else:
            object.__setattr__(self, "samplers", tuple(self.samplers))
        if not self.samplers:
            raise ValueError("a run spec needs at least one sampler spec")
        if self.trace is not None and self.scenario is not None:
            raise ValueError("trace and scenario are mutually exclusive in a run spec")
        if self.seed is None:
            raise ValueError(
                "a stored run must be seeded: seed=None draws fresh entropy and "
                "could never be reproduced from its cache key"
            )

    # ------------------------------------------------------------------
    def canonical(self) -> "RunSpec":
        """The order-independent form of this spec (what the store hashes).

        Every component spec string is normalised with
        :func:`repro.spec.canonical_spec` (kwargs sorted by name) and
        the numeric fields are coerced to plain Python types, so two
        specs describing the same run compare — and hash — equal.
        """
        return replace(
            self,
            samplers=tuple(canonical_spec(spec) for spec in self.samplers),
            trace=None if self.trace is None else canonical_spec(self.trace),
            scenario=None if self.scenario is None else canonical_spec(self.scenario),
            key=canonical_spec(self.key),
            bin_duration=float(self.bin_duration),
            top_t=int(self.top_t),
            num_runs=int(self.num_runs),
            seed=int(self.seed),
            monitor=bool(self.monitor),
            max_flows=None if self.max_flows is None else int(self.max_flows),
        )

    def to_dict(self) -> dict:
        """JSON-friendly export; inverse of :meth:`from_dict`."""
        return {
            "samplers": list(self.samplers),
            "trace": self.trace,
            "scenario": self.scenario,
            "key": self.key,
            "bin_duration": float(self.bin_duration),
            "top_t": int(self.top_t),
            "num_runs": int(self.num_runs),
            "seed": int(self.seed),
            "monitor": bool(self.monitor),
            "max_flows": None if self.max_flows is None else int(self.max_flows),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Rebuild a spec from its :meth:`to_dict` representation."""
        max_flows = data.get("max_flows")
        return cls(
            samplers=tuple(data["samplers"]),
            trace=data.get("trace"),
            scenario=data.get("scenario"),
            key=data.get("key", "five-tuple"),
            bin_duration=float(data.get("bin_duration", 60.0)),
            top_t=int(data.get("top_t", 10)),
            num_runs=int(data.get("num_runs", 5)),
            seed=int(data["seed"]),
            monitor=bool(data.get("monitor", False)),
            max_flows=None if max_flows is None else int(max_flows),
        )

    # ------------------------------------------------------------------
    def build_pipeline(self) -> Pipeline:
        """A :class:`~repro.pipeline.pipeline.Pipeline` configured to run this spec."""
        pipeline = (
            Pipeline()
            .with_key_policy(self.key)
            .with_bin_duration(self.bin_duration)
            .with_top(self.top_t)
            .with_runs(self.num_runs)
            .with_seed(self.seed)
        )
        if self.scenario is not None:
            pipeline.with_scenario(self.scenario)
        else:
            pipeline.with_trace(self.trace if self.trace is not None else "sprint")
        for sampler in self.samplers:
            pipeline.with_sampler(sampler)
        if self.monitor or self.max_flows is not None:
            pipeline.with_monitor(self.max_flows)
        return pipeline

    def execute(
        self, parallel: str | bool | int | None = "auto", jobs: int | None = None
    ) -> PipelineResult:
        """Run the spec through the pipeline's execution backends.

        Parameters
        ----------
        parallel, jobs:
            Forwarded to :meth:`Pipeline.run
            <repro.pipeline.pipeline.Pipeline.run>` — the result is
            bit-identical whatever backend executes the cells.
        """
        if self.monitor or self.max_flows is not None:
            # Monitor runs are serial by contract; "auto" honours that.
            return self.build_pipeline().run(parallel="serial")
        return self.build_pipeline().run(parallel=parallel, jobs=jobs)


def store_key(spec: RunSpec, *, salt: str = STORE_SALT) -> str:
    """Stable content-address of one run spec.

    SHA-256 of the canonical spec's sorted-key JSON, salted with the
    store format and library version; truncated to 24 hex characters
    (96 bits — collision-safe for any realistic sweep).  Stable across
    processes, machines and dict/kwargs orderings; any change to a
    field that affects the numbers yields a different key.

    >>> a = RunSpec(samplers=("periodic:period=100,phase=3",), trace="sprint", seed=1)
    >>> b = RunSpec(samplers=("periodic:phase=3,period=100",), trace="sprint", seed=1)
    >>> store_key(a) == store_key(b)
    True
    >>> store_key(a) == store_key(replace(a, seed=2))
    False
    """
    payload = json.dumps(
        {"salt": salt, "spec": spec.canonical().to_dict()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


@dataclass(frozen=True)
class StoredRun:
    """One store hit: the key, the spec that produced it, and the result."""

    key: str
    spec: RunSpec
    result: PipelineResult


@dataclass(frozen=True)
class Lease:
    """An advisory claim on one pending cell by one worker.

    A lease is a ``leases/<key>.json`` file: whoever holds it intends
    to compute the artifact for ``key`` before ``deadline`` (a
    monotonic-clock timestamp).  Leases are *advisory* — they only
    prevent duplicate work, never corruption: artifacts are atomic and
    idempotent, so even a duplicated execution converges to the same
    bytes.  An expired lease marks a crashed (or stalled) worker and
    may be reclaimed by anyone.
    """

    key: str
    owner: str
    deadline: float
    acquired: float

    def expired(self, now: float) -> bool:
        """Whether the holder's deadline has passed at clock time ``now``."""
        return now >= self.deadline

    def remaining(self, now: float) -> float:
        """Seconds of validity left at clock time ``now`` (never negative)."""
        return max(0.0, self.deadline - now)

    def to_dict(self) -> dict:
        """JSON-friendly export; inverse of :meth:`from_dict`."""
        return {
            "key": self.key,
            "owner": self.owner,
            "deadline": float(self.deadline),
            "acquired": float(self.acquired),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Lease":
        """Rebuild a lease from its :meth:`to_dict` representation."""
        return cls(
            key=str(data["key"]),
            owner=str(data["owner"]),
            deadline=float(data["deadline"]),
            acquired=float(data["acquired"]),
        )


def default_clock() -> float:
    """The store's default lease clock: the machine-wide monotonic clock.

    Lease deadlines only order events *between live processes on one
    machine sharing one store directory*; they never enter results,
    keys or artifacts, so reading the clock here cannot break
    reproducibility.  ``time.monotonic`` (CLOCK_MONOTONIC) is shared
    across processes on the platforms the worker pool supports and is
    immune to wall-clock steps from NTP.  Tests inject a fake clock
    through ``RunStore(clock=...)`` instead of patching this.
    """
    return time.monotonic()  # reprolint: disable=wall-clock -- lease TTLs order live processes only; never enters results or keys


@dataclass
class VerifyReport:
    """Outcome of :meth:`RunStore.verify`: what was checked, what is wrong."""

    checked: int = 0
    ok: int = 0
    issues: list[tuple[str, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every checked entry loaded and re-keyed correctly."""
        return not self.issues


class RunStore:
    """A directory of content-addressed pipeline results.

    Parameters
    ----------
    root:
        Store directory; created on first :meth:`put`.
    array_format:
        ``"json"`` (default) keeps the full result in one JSON file per
        run; ``"npz"`` moves the per-bin metric arrays into a sibling
        ``.npz`` (compact and mmap-able for large sweeps) and leaves
        ``{"__npz__": name}`` references in the JSON.  A store may mix
        formats; ``get`` handles both.

    >>> import tempfile
    >>> spec = RunSpec(samplers=("bernoulli:rate=0.5",),
    ...                trace="sprint:duration=120,scale=0.002", num_runs=2, seed=0)
    >>> store = RunStore(tempfile.mkdtemp())
    >>> store.get(spec) is None
    True
    >>> key = store.put(spec, spec.execute())
    >>> store.get(spec).result.num_runs
    2
    >>> [entry[0] == key for entry in store.list()]
    [True]
    """

    INDEX_NAME = "index.json"
    INDEX_LOCK = "index.lock"
    RUNS_DIR = "runs"
    LEASES_DIR = "leases"

    #: Bounded retries for the read-merge-verify index update loop.
    INDEX_MERGE_ATTEMPTS = 8

    def __init__(
        self,
        root: str | Path,
        array_format: str = "json",
        clock: Callable[[], float] | None = None,
    ) -> None:
        if array_format not in ("json", "npz"):
            raise ValueError(f"unknown array_format {array_format!r}; expected 'json' or 'npz'")
        self.root = Path(root)
        self.array_format = array_format
        #: Lease clock; injectable so tests control expiry deterministically.
        self.clock: Callable[[], float] = clock if clock is not None else default_clock
        #: Multi-subscriber lifecycle bus.  Events fired at named points
        #: (``put.after-artifact``, ``get.hit``/``get.miss``,
        #: ``lease.claim``/``lease.renew``/``lease.release``/
        #: ``lease.reclaim``) with the store key; the fault-injection
        #: suite, telemetry adapters and progress reporters subscribe
        #: concurrently without clobbering each other.
        self.events: telemetry.EventBus = telemetry.EventBus()
        #: Backing slot of the deprecated :attr:`on_event` shim.
        self._legacy_on_event: Callable[[str, str], None] | None = None
        #: Keys this instance has put — the index merge loop re-asserts
        #: them so a concurrent writer can never erase our entries.
        self._written_entries: dict[str, dict] = {}

    # ------------------------------------------------------------------
    # Paths and index
    # ------------------------------------------------------------------
    @property
    def index_path(self) -> Path:
        """Location of the fast-listing index."""
        return self.root / self.INDEX_NAME

    @property
    def runs_dir(self) -> Path:
        """Directory holding one artifact set per stored run."""
        return self.root / self.RUNS_DIR

    @property
    def leases_dir(self) -> Path:
        """Directory holding one advisory lease file per in-flight cell."""
        return self.root / self.LEASES_DIR

    def run_path(self, key: str) -> Path:
        """JSON artifact path of one key."""
        return self.runs_dir / f"{key}.json"

    def lease_path(self, key: str) -> Path:
        """Lease file path of one key."""
        return self.leases_dir / f"{key}.json"

    def _npz_path(self, key: str) -> Path:
        return self.runs_dir / f"{key}.npz"

    def _fire(self, event: str, key: str) -> None:
        self.events.emit(event, key)

    @property
    def on_event(self) -> Callable[[str, str], None] | None:
        """Deprecated single-slot alias over :attr:`events`.

        Assigning a callback subscribes it on the event bus (replacing
        any callback previously assigned through this attribute);
        assigning ``None`` unsubscribes it.  New code should call
        ``store.events.subscribe(...)`` / ``unsubscribe(...)`` directly
        — multiple subscribers then coexist instead of clobbering one
        slot.
        """
        return self._legacy_on_event

    @on_event.setter
    def on_event(self, callback: Callable[[str, str], None] | None) -> None:
        telemetry.deprecated_single_slot("RunStore.on_event", "RunStore.events.subscribe()")
        if self._legacy_on_event is not None:
            self.events.unsubscribe(self._legacy_on_event)
        self._legacy_on_event = callback
        if callback is not None:
            self.events.subscribe(callback)

    def _load_index(self) -> dict:
        """The parsed index, cached against the file's (mtime, size, inode).

        ``put`` is called once per sweep cell; caching the parse keeps a
        long sweep from re-reading a growing index file on every cell,
        while the stat check still picks up writes made by another
        process.  The inode is part of the stamp because every index
        write lands via ``os.replace`` of a fresh temp file: two writes
        inside one mtime tick with equal sizes still get distinct
        inodes, so a concurrent writer can never leave this cache
        serving a stale parse (the regression
        ``tests/test_store.py::TestConcurrentIndexWriters`` pins).
        """
        try:
            stat = self.index_path.stat()
            stamp = (stat.st_mtime_ns, stat.st_size, stat.st_ino)
        except OSError:
            self._index_cache = None
            return {"format": STORE_FORMAT, "salt": STORE_SALT, "entries": {}}
        cached = getattr(self, "_index_cache", None)
        if cached is not None and cached[0] == stamp:
            return cached[1]
        index = json.loads(self.index_path.read_text())
        self._index_cache = (stamp, index)
        return index

    def _write_index(self, index: dict) -> None:
        entries = index["entries"]
        index["entries"] = {key: entries[key] for key in sorted(entries)}
        _atomic_write_text(self.index_path, json.dumps(index, indent=2, sort_keys=True) + "\n")
        stat = self.index_path.stat()
        self._index_cache = ((stat.st_mtime_ns, stat.st_size, stat.st_ino), index)

    @contextlib.contextmanager
    def _index_lock(self) -> Iterator[None]:
        """Hold an exclusive advisory lock over an index merge cycle.

        ``flock`` on a sibling ``index.lock`` file serialises the
        read-merge-write cycles of concurrent writers.  Without it, a
        writer that read the index before our merge can replace the
        file after our verify pass returned — a lost update no
        optimistic retry loop can see.  On platforms without ``fcntl``
        the lock is a no-op and the merge loop below stays best-effort
        (the artifacts remain the source of truth; ``gc`` reindexes).
        """
        if fcntl is None:
            yield
            return
        fd = os.open(self.root / self.INDEX_LOCK, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)  # closing the descriptor releases the lock

    def _record_in_index(self, key: str, spec_dict: dict) -> None:
        """Merge one entry into the index, surviving concurrent writers.

        The index is a cache of the ``runs/`` directory, but a lost
        update would still make ``repro store ls`` lie until the next
        ``gc``.  Writers therefore take the index lock and loop:
        re-read the freshest on-disk index (the inode-aware stamp
        defeats the parse cache whenever another process replaced the
        file), merge *every* entry this instance has ever written,
        publish, and re-read to verify.  Under the lock one pass
        suffices; the loop is the safety net for platforms where the
        lock is a no-op.
        """
        self._written_entries[key] = spec_dict
        with self._index_lock():
            for _ in range(self.INDEX_MERGE_ATTEMPTS):
                index = self._load_index()
                missing = {
                    entry_key: entry
                    for entry_key, entry in self._written_entries.items()
                    if entry_key not in index["entries"]
                }
                if not missing:
                    return
                merged = dict(index)
                merged["entries"] = {**index["entries"], **missing}
                self._write_index(merged)

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def key_of(self, spec: RunSpec | str) -> str:
        """The store key of a spec (a passed string is already a key)."""
        return spec if isinstance(spec, str) else store_key(spec)

    def __contains__(self, spec: RunSpec | str) -> bool:
        return self.run_path(self.key_of(spec)).is_file()

    def put(self, spec: RunSpec, result: PipelineResult) -> str:
        """Persist one result under its spec's key; returns the key.

        Writing is idempotent (putting the same spec again overwrites
        the artifact with equivalent contents — results are
        deterministic functions of the spec) and **atomic**: every file
        lands via a same-directory temp file and ``os.replace``, so a
        sweep killed mid-write never leaves a truncated artifact that
        a resumed sweep would mistake for a cache hit.  The NPZ sibling
        is replaced before the JSON that references it, and any lease
        on the key is released last — a completed artifact always wins
        over a lease, whatever instant a worker dies at.
        """
        key = store_key(spec)
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        result_dict = result.to_dict()
        if self.array_format == "npz":
            result_dict, arrays = _extract_arrays(result_dict)
            buffer = io.BytesIO()
            np.savez_compressed(buffer, **arrays)
            _atomic_write_bytes(self._npz_path(key), buffer.getvalue())
        payload = {
            "key": key,
            "salt": STORE_SALT,
            "spec": spec.canonical().to_dict(),
            "result": result_dict,
        }
        _atomic_write_text(
            self.run_path(key), json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        if telemetry.enabled:
            telemetry.count("store.put")
        self._fire("put.after-artifact", key)
        self._record_in_index(key, spec.canonical().to_dict())
        self.lease_path(key).unlink(missing_ok=True)
        return key

    def get(self, spec: RunSpec | str) -> StoredRun | None:
        """Load one stored run by spec or key; ``None`` on a miss."""
        key = self.key_of(spec)
        path = self.run_path(key)
        if not path.is_file():
            if telemetry.enabled:
                telemetry.count("store.get.miss")
            self._fire("get.miss", key)
            return None
        if telemetry.enabled:
            telemetry.count("store.get.hit")
        self._fire("get.hit", key)
        payload = json.loads(path.read_text())
        result_dict = payload["result"]
        if _has_npz_refs(result_dict):
            with np.load(self._npz_path(key)) as arrays:
                result_dict = _restore_arrays(result_dict, arrays)
        return StoredRun(
            key=key,
            spec=RunSpec.from_dict(payload["spec"]),
            result=PipelineResult.from_dict(result_dict),
        )

    def list(self) -> list[tuple[str, RunSpec]]:
        """Every indexed run as ``(key, spec)``, sorted by key.

        Reads only ``index.json`` — listing a store of thousands of
        runs does not open the artifacts.
        """
        index = self._load_index()
        return [
            (key, RunSpec.from_dict(entry))
            for key, entry in sorted(index["entries"].items())
        ]

    # ------------------------------------------------------------------
    # Leases
    # ------------------------------------------------------------------
    def get_lease(self, key: str) -> Lease | None:
        """The current lease on ``key``, or ``None`` when absent/corrupt.

        A corrupt lease file (torn by a dying writer, or hand-edited)
        is reported by :meth:`verify`, reaped by :meth:`gc`, and
        treated as *expired* by :meth:`claim` — a file nobody can parse
        protects nobody's work.
        """
        try:
            return Lease.from_dict(json.loads(self.lease_path(key).read_text()))
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def _publish_lease(self, lease: Lease) -> bool:
        """Atomically create ``leases/<key>.json``; False when contended.

        The file is materialised with its full contents under a unique
        temp name, fsynced, then *hard-linked* into place — ``os.link``
        fails with ``FileExistsError`` when the lease path already
        exists, so exactly one of any number of racing workers wins,
        and a reader can never observe a partially written lease.
        """
        self.leases_dir.mkdir(parents=True, exist_ok=True)
        path = self.lease_path(lease.key)
        temp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        _write_file_synced(temp, (json.dumps(lease.to_dict(), sort_keys=True) + "\n").encode())
        try:
            os.link(temp, path)
        except FileExistsError:
            return False
        finally:
            temp.unlink(missing_ok=True)
        return True

    def claim(self, spec: RunSpec | str, owner: str, ttl: float) -> Lease | None:
        """Try to lease one pending cell for ``owner``; ``None`` on failure.

        The decision procedure, in order:

        1. the artifact already exists — nothing to claim (``None``);
        2. no lease file — atomically create one (hard-link publish:
           exactly one racing claimer wins);
        3. a live lease we already own — renew it;
        4. a live lease owned by someone else — back off (``None``);
        5. an expired or corrupt lease — the holder crashed: *reclaim*
           by atomically renaming the dead lease aside (exactly one
           racing reclaimer wins the rename) and publishing our own.

        ``ttl`` seconds of validity are granted from the store clock;
        hold the lease alive across long executions with :meth:`renew`.
        """
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        key = self.key_of(spec)
        if self.run_path(key).is_file():
            return None
        now = self.clock()
        lease = Lease(key=key, owner=owner, deadline=now + ttl, acquired=now)
        if self._publish_lease(lease):
            if telemetry.enabled:
                telemetry.count("store.lease.claim")
            self._fire("lease.claim", key)
            return lease
        current = self.get_lease(key)
        if current is None:
            # Corrupt (or vanished) lease file: reclaim it like an
            # expired one — it cannot be protecting live work.
            return self._reclaim(key, lease)
        if current.owner == owner and not current.expired(now):
            return self.renew(current, ttl)
        if not current.expired(now):
            return None
        return self._reclaim(key, lease)

    def _reclaim(self, key: str, lease: Lease) -> Lease | None:
        """Take over an expired/corrupt lease; ``None`` when we lose the race.

        ``os.rename`` of the dead lease to a per-process tombstone is
        the mutex: the filesystem lets exactly one racing reclaimer
        rename the same source file.  The winner removes the tombstone
        and publishes its own lease (which can still lose to a fresh
        claimer that slipped into the gap — then this claim fails and
        the worker simply moves to the next cell).
        """
        tomb = self.lease_path(key).with_name(f"{key}.{os.getpid()}.reclaim.tmp")
        try:
            os.rename(self.lease_path(key), tomb)
        except FileNotFoundError:
            pass  # already reclaimed/released; fall through to publish
        else:
            tomb.unlink(missing_ok=True)
        if self.run_path(key).is_file():
            return None
        if not self._publish_lease(lease):
            return None
        if telemetry.enabled:
            telemetry.count("store.lease.reclaim")
        self._fire("lease.reclaim", key)
        return lease

    def renew(self, lease: Lease, ttl: float) -> Lease | None:
        """Heartbeat: extend an owned lease; ``None`` when it was lost.

        Re-reads the lease file first — if another worker reclaimed the
        key (this process stalled past its deadline) the renewal fails
        and the caller must treat its execution as speculative (the
        eventual ``put`` is still safe: artifacts are idempotent).
        """
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        current = self.get_lease(lease.key)
        if current is None or current.owner != lease.owner:
            return None
        renewed = replace(current, deadline=self.clock() + ttl)
        _atomic_write_text(
            self.lease_path(lease.key), json.dumps(renewed.to_dict(), sort_keys=True) + "\n"
        )
        if telemetry.enabled:
            telemetry.count("store.lease.renew")
        self._fire("lease.renew", lease.key)
        return renewed

    def release(self, lease: Lease) -> None:
        """Drop an owned lease (no-op when already gone or reclaimed)."""
        current = self.get_lease(lease.key)
        if current is not None and current.owner == lease.owner:
            self.lease_path(lease.key).unlink(missing_ok=True)
            if telemetry.enabled:
                telemetry.count("store.lease.release")
            self._fire("lease.release", lease.key)

    def list_leases(self) -> list[Lease]:
        """Every parseable lease file, sorted by key (corrupt ones skipped)."""
        if not self.leases_dir.is_dir():
            return []
        leases = []
        for path in sorted(self.leases_dir.glob("*.json")):
            lease = self.get_lease(path.stem)
            if lease is not None:
                leases.append(lease)
        return leases

    def cell_state(self, spec: RunSpec | str) -> str:
        """Lifecycle state of one cell: done, leased, orphaned or pending.

        ``done`` — the artifact exists (leases are irrelevant then);
        ``leased`` — a live lease holds the cell; ``orphaned`` — the
        only claim is an expired lease (its worker crashed); ``pending``
        — no artifact, no lease.
        """
        key = self.key_of(spec)
        if self.run_path(key).is_file():
            return "done"
        lease = self.get_lease(key)
        if lease is None:
            return "orphaned" if self.lease_path(key).is_file() else "pending"
        return "orphaned" if lease.expired(self.clock()) else "leased"

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def verify(self) -> VerifyReport:
        """Check every artifact against the cache-key contract.

        For each run file: it must parse, its recorded salt must match
        the running code's :data:`STORE_SALT`, its spec must re-hash to
        the file's key, its result must rebuild through
        :meth:`PipelineResult.from_dict
        <repro.pipeline.result.PipelineResult.from_dict>`, and any NPZ
        references must resolve.  Index entries without artifacts (and
        artifacts missing from the index) are reported too.

        Lease files are audited as well: an expired lease (crashed
        worker), a lease shadowed by its completed artifact, and a
        lease file that does not parse are all reported — and left in
        place; reaping is :meth:`gc`'s job, and neither operation ever
        touches a valid artifact.
        """
        report = VerifyReport()
        index = self._load_index()
        on_disk = (
            {path.stem for path in self.runs_dir.glob("*.json")}
            if self.runs_dir.is_dir()
            else set()
        )
        for key in sorted(on_disk | set(index["entries"])):
            report.checked += 1
            if key not in on_disk:
                report.issues.append((key, "indexed but artifact file is missing"))
                continue
            try:
                payload = json.loads(self.run_path(key).read_text())
            except (OSError, json.JSONDecodeError) as error:
                report.issues.append((key, f"unreadable artifact: {error}"))
                continue
            problems = []
            if payload.get("salt") != STORE_SALT:
                problems.append(
                    f"stale salt {payload.get('salt')!r} (current {STORE_SALT!r})"
                )
            try:
                spec = RunSpec.from_dict(payload["spec"])
                if store_key(spec) != key:
                    problems.append("spec does not hash to its key")
                result_dict = payload["result"]
                if _has_npz_refs(result_dict):
                    with np.load(self._npz_path(key)) as arrays:
                        result_dict = _restore_arrays(result_dict, arrays)
                PipelineResult.from_dict(result_dict)
            except Exception as error:  # noqa: BLE001 - verify reports, never raises
                problems.append(f"artifact does not rebuild: {error}")
            if key not in index["entries"]:
                problems.append("artifact present but not indexed (run gc to reindex)")
            if problems:
                report.issues.extend((key, problem) for problem in problems)
            else:
                report.ok += 1
        lease_keys = (
            sorted(path.stem for path in self.leases_dir.glob("*.json"))
            if self.leases_dir.is_dir()
            else []
        )
        now = self.clock()
        for key in lease_keys:
            lease = self.get_lease(key)
            if lease is None:
                report.issues.append((key, "unreadable lease file (run gc to reap it)"))
            elif self.run_path(key).is_file():
                report.issues.append(
                    (key, f"lease by {lease.owner!r} outlived its completed artifact")
                )
            elif lease.expired(now):
                report.issues.append(
                    (key, f"expired lease by {lease.owner!r} — worker crash? gc reaps it")
                )
        return report

    def gc(self) -> dict:
        """Reconcile the index with the artifacts on disk.

        Removes artifacts whose salt no longer matches (results from an
        older code version) or that fail to parse, drops index entries
        whose artifacts are gone, and indexes orphaned artifacts that
        are valid.  Stale leases are reaped too: expired (their worker
        crashed), shadowed by a completed artifact, or unreadable —
        while live leases and valid artifacts are never touched.
        Returns a summary dictionary with the ``removed`` keys,
        ``reindexed`` keys, ``reaped_leases`` keys and the number of
        entries ``kept``.
        """
        index = self._load_index()
        removed: list[str] = []
        reindexed: list[str] = []
        reaped_leases: list[str] = []
        if self.runs_dir.is_dir():
            for leftover in self.runs_dir.glob("*.tmp"):
                leftover.unlink()  # interrupted atomic writes
        if self.leases_dir.is_dir():
            for leftover in self.leases_dir.glob("*.tmp"):
                leftover.unlink()  # interrupted lease publishes/reclaims
            now = self.clock()
            for path in sorted(self.leases_dir.glob("*.json")):
                key = path.stem
                lease = self.get_lease(key)
                stale = (
                    lease is None  # unreadable protects nobody
                    or lease.expired(now)  # holder crashed
                    or self.run_path(key).is_file()  # artifact won already
                )
                if stale:
                    path.unlink(missing_ok=True)
                    reaped_leases.append(key)
        on_disk = sorted(
            {path.stem for path in self.runs_dir.glob("*.json")}
            if self.runs_dir.is_dir()
            else set()
        )
        for key in on_disk:
            stale = False
            try:
                payload = json.loads(self.run_path(key).read_text())
                stale = payload.get("salt") != STORE_SALT or store_key(
                    RunSpec.from_dict(payload["spec"])
                ) != key
            except Exception:  # noqa: BLE001 - any unreadable artifact is garbage
                stale = True
            if stale:
                self.run_path(key).unlink()
                self._npz_path(key).unlink(missing_ok=True)
                index["entries"].pop(key, None)
                removed.append(key)
            elif key not in index["entries"]:
                index["entries"][key] = payload["spec"]
                reindexed.append(key)
        remaining = set(on_disk) - set(removed)
        for key in sorted(set(index["entries"]) - remaining):
            del index["entries"][key]
            removed.append(key)
        self.root.mkdir(parents=True, exist_ok=True)
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        self._write_index(index)
        return {
            "removed": removed,
            "reindexed": reindexed,
            "reaped_leases": reaped_leases,
            "kept": len(index["entries"]),
        }


# ----------------------------------------------------------------------
# Atomic file replacement
# ----------------------------------------------------------------------
def _write_file_synced(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` and fsync it before returning.

    The fsync matters for the concurrent-writer contract: once another
    process can observe the file (after a subsequent ``os.replace`` or
    ``os.link``), its stat stamp — mtime, size *and* inode — reflects
    exactly these bytes, so the inode-aware index parse cache can never
    validate against content it has not seen.
    """
    with open(path, "wb") as handle:  # reprolint: disable=non-atomic-write -- the one raw-write primitive; every caller publishes via os.replace/os.link
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via a same-directory temp file + rename.

    ``os.replace`` is atomic on POSIX and Windows, so readers (and a
    resumed sweep's hit check) only ever see the old file, the new
    file, or no file — never a truncated one.  The temp name embeds the
    writer's pid: two uncoordinated workers replacing the same path
    (idempotent duplicate puts, index merges) never share a temp file,
    so neither can rename the other's half-written bytes into place.
    """
    temp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    _write_file_synced(temp, data)
    os.replace(temp, path)


def _atomic_write_text(path: Path, text: str) -> None:
    _atomic_write_bytes(path, text.encode("utf-8"))


# ----------------------------------------------------------------------
# NPZ array externalisation
# ----------------------------------------------------------------------
def _extract_arrays(result_dict: dict) -> tuple[dict, dict[str, np.ndarray]]:
    """Replace per-series arrays with ``{"__npz__": name}`` references.

    Walks the ``ranking``/``detection`` series of a ``to_dict`` payload
    and moves every numeric list into a flat array mapping with
    deterministic names (``arr_0``, ``arr_1``, ... in problem, label,
    field order), so the JSON stays small and the arrays load lazily.
    Only the dicts along the walked path are copied — the arrays (the
    dominant payload, which is exactly what NPZ mode keeps out of the
    JSON) are referenced, never re-serialised.
    """
    out = dict(result_dict)
    arrays: dict[str, np.ndarray] = {}
    counter = 0
    for problem in ("ranking", "detection"):
        series_map = {label: dict(payload) for label, payload in out.get(problem, {}).items()}
        for payload in series_map.values():
            for field_name in ("bin_start_times", "mean", "std", "values"):
                name = f"arr_{counter}"
                counter += 1
                arrays[name] = np.asarray(payload[field_name], dtype=float)
                payload[field_name] = {"__npz__": name}
        out[problem] = series_map
    return out, arrays


def _has_npz_refs(result_dict: dict) -> bool:
    for problem in ("ranking", "detection"):
        for payload in result_dict.get(problem, {}).values():
            for value in payload.values():
                if isinstance(value, dict) and "__npz__" in value:
                    return True
    return False


def _restore_arrays(result_dict: dict, arrays: Mapping[str, np.ndarray]) -> dict:
    """Inverse of :func:`_extract_arrays` given the loaded NPZ mapping."""
    out = json.loads(json.dumps(result_dict))
    for problem in ("ranking", "detection"):
        for payload in out.get(problem, {}).values():
            for field_name, value in payload.items():
                if isinstance(value, dict) and "__npz__" in value:
                    payload[field_name] = arrays[value["__npz__"]].tolist()
    return out


__all__ = [
    "STORE_FORMAT",
    "STORE_SALT",
    "Lease",
    "RunSpec",
    "RunStore",
    "StoredRun",
    "VerifyReport",
    "default_clock",
    "store_key",
]
