"""Persistent, content-addressed store of pipeline results.

The paper's results are *grids*: ranking/detection quality swept over
sampling rate, flow definition, bin duration, scenario and seed.  Every
``repro run`` used to recompute its cell from scratch and discard the
output; this module gives runs a durable home so sweeps become
incremental.

Two pieces:

* :class:`RunSpec` — the canonical, fully-resolved description of one
  run (source spec, sampler specs, key policy, bins, seed, monitor
  settings).  Everything that determines the run's numbers is in the
  spec; everything that does not (chunk size, execution backend — both
  bit-identical by the executor's contracts) is deliberately *not*.
* :class:`RunStore` — a directory of JSON/NPZ artifacts keyed by
  :func:`store_key`, a stable hash of the canonical spec plus a
  code-version salt.  ``get``/``put``/``list``/``verify``/``gc`` cover
  the cache workflows; an ``index.json`` makes listing cheap.

The cache-key contract
----------------------
``store_key(spec)`` hashes the JSON of ``spec.canonical().to_dict()``
with sorted keys, salted with :data:`STORE_SALT` (store format version
plus the library version).  Consequences:

* the same spec hashes identically in every process and for every
  dict-key or spec-argument ordering (``canonical_spec`` sorts spec
  kwargs, ``sort_keys`` sorts the JSON);
* changing **any** field that affects the numbers changes the key;
* results computed by a different library version are never reused —
  a version bump invalidates the cache rather than silently mixing
  numerics.

>>> spec = RunSpec(samplers=("bernoulli:rate=0.5",), trace="sprint:duration=120,scale=0.002",
...                num_runs=2, seed=0)
>>> spec.canonical() == RunSpec.from_dict(spec.to_dict()).canonical()
True
>>> store_key(spec) == store_key(spec.canonical())
True

Layout on disk::

    <root>/
      index.json           # {"salt": ..., "entries": {key: spec dict}}
      runs/<key>.json      # {"key", "salt", "spec", "result"}
      runs/<key>.npz       # large arrays, when array_format="npz"

See ``docs/sweeps.md`` for the full contract and the resumable sweep
orchestrator built on top (:mod:`repro.sweep`).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from collections.abc import Mapping
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from . import __version__
from .pipeline.pipeline import Pipeline
from .pipeline.result import PipelineResult
from .spec import canonical_spec

#: Store format version — bump when the on-disk layout or the key
#: derivation changes incompatibly.
STORE_FORMAT = 1

#: Salt mixed into every store key: ties cached results to both the
#: store format and the code version that produced them.
STORE_SALT = f"repro-store/{STORE_FORMAT}/repro/{__version__}"


@dataclass(frozen=True)
class RunSpec:
    """Canonical description of one pipeline run — the unit the store keys.

    Exactly one of ``trace`` / ``scenario`` names the packet source (as
    a registry spec string); ``samplers`` is the tuple of sampler specs
    evaluated against it.  All fields are spec strings or plain numbers,
    so a ``RunSpec`` is JSON-serialisable, hashable and buildable from
    a config file or CLI flags.

    Fields that do **not** affect the computed numbers (streaming chunk
    size, execution backend, worker count) are intentionally absent:
    the executor guarantees bit-identical results across them, so they
    must not fragment the cache.
    """

    samplers: tuple[str, ...]
    trace: str | None = None
    scenario: str | None = None
    key: str = "five-tuple"
    bin_duration: float = 60.0
    top_t: int = 10
    num_runs: int = 5
    seed: int = 0
    monitor: bool = False
    max_flows: int | None = None

    def __post_init__(self) -> None:
        if isinstance(self.samplers, str):
            object.__setattr__(self, "samplers", (self.samplers,))
        else:
            object.__setattr__(self, "samplers", tuple(self.samplers))
        if not self.samplers:
            raise ValueError("a run spec needs at least one sampler spec")
        if self.trace is not None and self.scenario is not None:
            raise ValueError("trace and scenario are mutually exclusive in a run spec")
        if self.seed is None:
            raise ValueError(
                "a stored run must be seeded: seed=None draws fresh entropy and "
                "could never be reproduced from its cache key"
            )

    # ------------------------------------------------------------------
    def canonical(self) -> "RunSpec":
        """The order-independent form of this spec (what the store hashes).

        Every component spec string is normalised with
        :func:`repro.spec.canonical_spec` (kwargs sorted by name) and
        the numeric fields are coerced to plain Python types, so two
        specs describing the same run compare — and hash — equal.
        """
        return replace(
            self,
            samplers=tuple(canonical_spec(spec) for spec in self.samplers),
            trace=None if self.trace is None else canonical_spec(self.trace),
            scenario=None if self.scenario is None else canonical_spec(self.scenario),
            key=canonical_spec(self.key),
            bin_duration=float(self.bin_duration),
            top_t=int(self.top_t),
            num_runs=int(self.num_runs),
            seed=int(self.seed),
            monitor=bool(self.monitor),
            max_flows=None if self.max_flows is None else int(self.max_flows),
        )

    def to_dict(self) -> dict:
        """JSON-friendly export; inverse of :meth:`from_dict`."""
        return {
            "samplers": list(self.samplers),
            "trace": self.trace,
            "scenario": self.scenario,
            "key": self.key,
            "bin_duration": float(self.bin_duration),
            "top_t": int(self.top_t),
            "num_runs": int(self.num_runs),
            "seed": int(self.seed),
            "monitor": bool(self.monitor),
            "max_flows": None if self.max_flows is None else int(self.max_flows),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Rebuild a spec from its :meth:`to_dict` representation."""
        max_flows = data.get("max_flows")
        return cls(
            samplers=tuple(data["samplers"]),
            trace=data.get("trace"),
            scenario=data.get("scenario"),
            key=data.get("key", "five-tuple"),
            bin_duration=float(data.get("bin_duration", 60.0)),
            top_t=int(data.get("top_t", 10)),
            num_runs=int(data.get("num_runs", 5)),
            seed=int(data["seed"]),
            monitor=bool(data.get("monitor", False)),
            max_flows=None if max_flows is None else int(max_flows),
        )

    # ------------------------------------------------------------------
    def build_pipeline(self) -> Pipeline:
        """A :class:`~repro.pipeline.pipeline.Pipeline` configured to run this spec."""
        pipeline = (
            Pipeline()
            .with_key_policy(self.key)
            .with_bin_duration(self.bin_duration)
            .with_top(self.top_t)
            .with_runs(self.num_runs)
            .with_seed(self.seed)
        )
        if self.scenario is not None:
            pipeline.with_scenario(self.scenario)
        else:
            pipeline.with_trace(self.trace if self.trace is not None else "sprint")
        for sampler in self.samplers:
            pipeline.with_sampler(sampler)
        if self.monitor or self.max_flows is not None:
            pipeline.with_monitor(self.max_flows)
        return pipeline

    def execute(
        self, parallel: str | bool | int | None = "auto", jobs: int | None = None
    ) -> PipelineResult:
        """Run the spec through the pipeline's execution backends.

        Parameters
        ----------
        parallel, jobs:
            Forwarded to :meth:`Pipeline.run
            <repro.pipeline.pipeline.Pipeline.run>` — the result is
            bit-identical whatever backend executes the cells.
        """
        if self.monitor or self.max_flows is not None:
            # Monitor runs are serial by contract; "auto" honours that.
            return self.build_pipeline().run(parallel="serial")
        return self.build_pipeline().run(parallel=parallel, jobs=jobs)


def store_key(spec: RunSpec, *, salt: str = STORE_SALT) -> str:
    """Stable content-address of one run spec.

    SHA-256 of the canonical spec's sorted-key JSON, salted with the
    store format and library version; truncated to 24 hex characters
    (96 bits — collision-safe for any realistic sweep).  Stable across
    processes, machines and dict/kwargs orderings; any change to a
    field that affects the numbers yields a different key.

    >>> a = RunSpec(samplers=("periodic:period=100,phase=3",), trace="sprint", seed=1)
    >>> b = RunSpec(samplers=("periodic:phase=3,period=100",), trace="sprint", seed=1)
    >>> store_key(a) == store_key(b)
    True
    >>> store_key(a) == store_key(replace(a, seed=2))
    False
    """
    payload = json.dumps(
        {"salt": salt, "spec": spec.canonical().to_dict()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


@dataclass(frozen=True)
class StoredRun:
    """One store hit: the key, the spec that produced it, and the result."""

    key: str
    spec: RunSpec
    result: PipelineResult


@dataclass
class VerifyReport:
    """Outcome of :meth:`RunStore.verify`: what was checked, what is wrong."""

    checked: int = 0
    ok: int = 0
    issues: list[tuple[str, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every checked entry loaded and re-keyed correctly."""
        return not self.issues


class RunStore:
    """A directory of content-addressed pipeline results.

    Parameters
    ----------
    root:
        Store directory; created on first :meth:`put`.
    array_format:
        ``"json"`` (default) keeps the full result in one JSON file per
        run; ``"npz"`` moves the per-bin metric arrays into a sibling
        ``.npz`` (compact and mmap-able for large sweeps) and leaves
        ``{"__npz__": name}`` references in the JSON.  A store may mix
        formats; ``get`` handles both.

    >>> import tempfile
    >>> spec = RunSpec(samplers=("bernoulli:rate=0.5",),
    ...                trace="sprint:duration=120,scale=0.002", num_runs=2, seed=0)
    >>> store = RunStore(tempfile.mkdtemp())
    >>> store.get(spec) is None
    True
    >>> key = store.put(spec, spec.execute())
    >>> store.get(spec).result.num_runs
    2
    >>> [entry[0] == key for entry in store.list()]
    [True]
    """

    INDEX_NAME = "index.json"
    RUNS_DIR = "runs"

    def __init__(self, root: str | Path, array_format: str = "json") -> None:
        if array_format not in ("json", "npz"):
            raise ValueError(f"unknown array_format {array_format!r}; expected 'json' or 'npz'")
        self.root = Path(root)
        self.array_format = array_format

    # ------------------------------------------------------------------
    # Paths and index
    # ------------------------------------------------------------------
    @property
    def index_path(self) -> Path:
        """Location of the fast-listing index."""
        return self.root / self.INDEX_NAME

    @property
    def runs_dir(self) -> Path:
        """Directory holding one artifact set per stored run."""
        return self.root / self.RUNS_DIR

    def run_path(self, key: str) -> Path:
        """JSON artifact path of one key."""
        return self.runs_dir / f"{key}.json"

    def _npz_path(self, key: str) -> Path:
        return self.runs_dir / f"{key}.npz"

    def _load_index(self) -> dict:
        """The parsed index, cached against the file's (mtime, size).

        ``put`` is called once per sweep cell; caching the parse keeps a
        long sweep from re-reading a growing index file on every cell,
        while the stat check still picks up writes made by another
        process (full reconciliation is ``gc``'s job).
        """
        try:
            stat = self.index_path.stat()
            stamp = (stat.st_mtime_ns, stat.st_size)
        except OSError:
            self._index_cache = None
            return {"format": STORE_FORMAT, "salt": STORE_SALT, "entries": {}}
        cached = getattr(self, "_index_cache", None)
        if cached is not None and cached[0] == stamp:
            return cached[1]
        index = json.loads(self.index_path.read_text())
        self._index_cache = (stamp, index)
        return index

    def _write_index(self, index: dict) -> None:
        entries = index["entries"]
        index["entries"] = {key: entries[key] for key in sorted(entries)}
        _atomic_write_text(self.index_path, json.dumps(index, indent=2, sort_keys=True) + "\n")
        stat = self.index_path.stat()
        self._index_cache = ((stat.st_mtime_ns, stat.st_size), index)

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def key_of(self, spec: RunSpec | str) -> str:
        """The store key of a spec (a passed string is already a key)."""
        return spec if isinstance(spec, str) else store_key(spec)

    def __contains__(self, spec: RunSpec | str) -> bool:
        return self.run_path(self.key_of(spec)).is_file()

    def put(self, spec: RunSpec, result: PipelineResult) -> str:
        """Persist one result under its spec's key; returns the key.

        Writing is idempotent (putting the same spec again overwrites
        the artifact with equivalent contents — results are
        deterministic functions of the spec) and **atomic**: every file
        lands via a same-directory temp file and ``os.replace``, so a
        sweep killed mid-write never leaves a truncated artifact that
        a resumed sweep would mistake for a cache hit.  The NPZ sibling
        is replaced before the JSON that references it.
        """
        key = store_key(spec)
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        result_dict = result.to_dict()
        if self.array_format == "npz":
            result_dict, arrays = _extract_arrays(result_dict)
            buffer = io.BytesIO()
            np.savez_compressed(buffer, **arrays)
            _atomic_write_bytes(self._npz_path(key), buffer.getvalue())
        payload = {
            "key": key,
            "salt": STORE_SALT,
            "spec": spec.canonical().to_dict(),
            "result": result_dict,
        }
        _atomic_write_text(
            self.run_path(key), json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        index = self._load_index()
        index["entries"][key] = spec.canonical().to_dict()
        self._write_index(index)
        return key

    def get(self, spec: RunSpec | str) -> StoredRun | None:
        """Load one stored run by spec or key; ``None`` on a miss."""
        key = self.key_of(spec)
        path = self.run_path(key)
        if not path.is_file():
            return None
        payload = json.loads(path.read_text())
        result_dict = payload["result"]
        if _has_npz_refs(result_dict):
            with np.load(self._npz_path(key)) as arrays:
                result_dict = _restore_arrays(result_dict, arrays)
        return StoredRun(
            key=key,
            spec=RunSpec.from_dict(payload["spec"]),
            result=PipelineResult.from_dict(result_dict),
        )

    def list(self) -> list[tuple[str, RunSpec]]:
        """Every indexed run as ``(key, spec)``, sorted by key.

        Reads only ``index.json`` — listing a store of thousands of
        runs does not open the artifacts.
        """
        index = self._load_index()
        return [
            (key, RunSpec.from_dict(entry))
            for key, entry in sorted(index["entries"].items())
        ]

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def verify(self) -> VerifyReport:
        """Check every artifact against the cache-key contract.

        For each run file: it must parse, its recorded salt must match
        the running code's :data:`STORE_SALT`, its spec must re-hash to
        the file's key, its result must rebuild through
        :meth:`PipelineResult.from_dict
        <repro.pipeline.result.PipelineResult.from_dict>`, and any NPZ
        references must resolve.  Index entries without artifacts (and
        artifacts missing from the index) are reported too.
        """
        report = VerifyReport()
        index = self._load_index()
        on_disk = (
            {path.stem for path in self.runs_dir.glob("*.json")}
            if self.runs_dir.is_dir()
            else set()
        )
        for key in sorted(on_disk | set(index["entries"])):
            report.checked += 1
            if key not in on_disk:
                report.issues.append((key, "indexed but artifact file is missing"))
                continue
            try:
                payload = json.loads(self.run_path(key).read_text())
            except (OSError, json.JSONDecodeError) as error:
                report.issues.append((key, f"unreadable artifact: {error}"))
                continue
            problems = []
            if payload.get("salt") != STORE_SALT:
                problems.append(
                    f"stale salt {payload.get('salt')!r} (current {STORE_SALT!r})"
                )
            try:
                spec = RunSpec.from_dict(payload["spec"])
                if store_key(spec) != key:
                    problems.append("spec does not hash to its key")
                result_dict = payload["result"]
                if _has_npz_refs(result_dict):
                    with np.load(self._npz_path(key)) as arrays:
                        result_dict = _restore_arrays(result_dict, arrays)
                PipelineResult.from_dict(result_dict)
            except Exception as error:  # noqa: BLE001 - verify reports, never raises
                problems.append(f"artifact does not rebuild: {error}")
            if key not in index["entries"]:
                problems.append("artifact present but not indexed (run gc to reindex)")
            if problems:
                report.issues.extend((key, problem) for problem in problems)
            else:
                report.ok += 1
        return report

    def gc(self) -> dict:
        """Reconcile the index with the artifacts on disk.

        Removes artifacts whose salt no longer matches (results from an
        older code version) or that fail to parse, drops index entries
        whose artifacts are gone, and indexes orphaned artifacts that
        are valid.  Returns a summary dictionary with the ``removed``
        keys, ``reindexed`` keys and the number of entries ``kept``.
        """
        index = self._load_index()
        removed: list[str] = []
        reindexed: list[str] = []
        if self.runs_dir.is_dir():
            for leftover in self.runs_dir.glob("*.tmp"):
                leftover.unlink()  # interrupted atomic writes
        on_disk = sorted(
            {path.stem for path in self.runs_dir.glob("*.json")}
            if self.runs_dir.is_dir()
            else set()
        )
        for key in on_disk:
            stale = False
            try:
                payload = json.loads(self.run_path(key).read_text())
                stale = payload.get("salt") != STORE_SALT or store_key(
                    RunSpec.from_dict(payload["spec"])
                ) != key
            except Exception:  # noqa: BLE001 - any unreadable artifact is garbage
                stale = True
            if stale:
                self.run_path(key).unlink()
                self._npz_path(key).unlink(missing_ok=True)
                index["entries"].pop(key, None)
                removed.append(key)
            elif key not in index["entries"]:
                index["entries"][key] = payload["spec"]
                reindexed.append(key)
        remaining = set(on_disk) - set(removed)
        for key in sorted(set(index["entries"]) - remaining):
            del index["entries"][key]
            removed.append(key)
        self.root.mkdir(parents=True, exist_ok=True)
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        self._write_index(index)
        return {"removed": removed, "reindexed": reindexed, "kept": len(index["entries"])}


# ----------------------------------------------------------------------
# Atomic file replacement
# ----------------------------------------------------------------------
def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via a same-directory temp file + rename.

    ``os.replace`` is atomic on POSIX and Windows, so readers (and a
    resumed sweep's hit check) only ever see the old file, the new
    file, or no file — never a truncated one.
    """
    temp = path.with_name(path.name + ".tmp")
    temp.write_bytes(data)
    os.replace(temp, path)


def _atomic_write_text(path: Path, text: str) -> None:
    _atomic_write_bytes(path, text.encode("utf-8"))


# ----------------------------------------------------------------------
# NPZ array externalisation
# ----------------------------------------------------------------------
def _extract_arrays(result_dict: dict) -> tuple[dict, dict[str, np.ndarray]]:
    """Replace per-series arrays with ``{"__npz__": name}`` references.

    Walks the ``ranking``/``detection`` series of a ``to_dict`` payload
    and moves every numeric list into a flat array mapping with
    deterministic names (``arr_0``, ``arr_1``, ... in problem, label,
    field order), so the JSON stays small and the arrays load lazily.
    Only the dicts along the walked path are copied — the arrays (the
    dominant payload, which is exactly what NPZ mode keeps out of the
    JSON) are referenced, never re-serialised.
    """
    out = dict(result_dict)
    arrays: dict[str, np.ndarray] = {}
    counter = 0
    for problem in ("ranking", "detection"):
        series_map = {label: dict(payload) for label, payload in out.get(problem, {}).items()}
        for payload in series_map.values():
            for field_name in ("bin_start_times", "mean", "std", "values"):
                name = f"arr_{counter}"
                counter += 1
                arrays[name] = np.asarray(payload[field_name], dtype=float)
                payload[field_name] = {"__npz__": name}
        out[problem] = series_map
    return out, arrays


def _has_npz_refs(result_dict: dict) -> bool:
    for problem in ("ranking", "detection"):
        for payload in result_dict.get(problem, {}).values():
            for value in payload.values():
                if isinstance(value, dict) and "__npz__" in value:
                    return True
    return False


def _restore_arrays(result_dict: dict, arrays: Mapping[str, np.ndarray]) -> dict:
    """Inverse of :func:`_extract_arrays` given the loaded NPZ mapping."""
    out = json.loads(json.dumps(result_dict))
    for problem in ("ranking", "detection"):
        for payload in out.get(problem, {}).values():
            for field_name, value in payload.items():
                if isinstance(value, dict) and "__npz__" in value:
                    payload[field_name] = arrays[value["__npz__"]].tolist()
    return out


__all__ = [
    "STORE_FORMAT",
    "STORE_SALT",
    "RunSpec",
    "RunStore",
    "StoredRun",
    "VerifyReport",
    "store_key",
]
