"""repro — reproduction of "Ranking flows from sampled traffic".

A library for studying how well the largest flows on a network link can
be detected and ranked from packet-sampled traffic, reproducing the
models and experiments of Barakat, Iannaccone and Diot (2004/2005).

Subpackages
-----------
``repro.core``
    Analytical misranking / ranking / detection models and metrics.
``repro.distributions``
    Flow size distributions (Pareto, lognormal, empirical, ...).
``repro.flows``
    Flow keys, packets, classification and flow tables.
``repro.sampling``
    Packet and flow samplers (Bernoulli, periodic, smart, heavy-hitter
    baselines).
``repro.traces``
    Synthetic flow-level and packet-level traces, and the streaming
    ``PacketSource`` abstraction the pipeline executes.
``repro.scenarios``
    Named workload scenarios (steady, diurnal, burst, churn,
    multilink) composed from packet sources.
``repro.simulation``
    Trace-driven sampling simulations (Section 8 of the paper).
``repro.inversion``
    Aggregate inversion estimators from prior work.
``repro.experiments``
    Drivers that regenerate each figure of the paper.
``repro.pipeline``
    The composable, streaming experiment pipeline — the one public way
    to run any experiment.
``repro.registry``
    String-keyed registries of samplers, key policies, distributions and
    trace generators.
``repro.store``
    Persistent, content-addressed store of pipeline results (the cache
    behind incremental sweeps).
``repro.sweep``
    Resumable sweep orchestration: declarative grids executed through
    the pipeline backends, skipping store hits.
``repro.analysis``
    The ``reprolint`` AST contract linter: static rules enforcing the
    determinism, picklability and cache-key invariants the other
    subsystems rely on (``repro lint``).
``repro.telemetry``
    Process-local observability: counters, gauges, histograms and
    timing spans with a zero-overhead off-switch, deterministic
    cross-process merging, and the multi-subscriber event bus behind
    ``RunStore.events``.

Quickstart
----------
>>> from repro import Pipeline
>>> result = (
...     Pipeline()
...     .with_trace("sprint", scale=0.002, duration=300.0)
...     .with_sampler("bernoulli", rate=0.5)
...     .with_seed(0)
...     .run()
... )
>>> result.series("ranking", 0.5).num_runs
5
"""

__version__ = "1.10.0"

from . import analysis, telemetry
from .core import (
    DetectionModel,
    FlowPopulation,
    RankingModel,
    misranking_probability_exact,
    misranking_probability_gaussian,
    optimal_sampling_rate,
    required_sampling_rate,
)
from .distributions import ParetoFlowSizes
from .pipeline import Pipeline, PipelineResult
from .registry import DISTRIBUTIONS, KEY_POLICIES, SAMPLERS, TRACES, parse_spec
from .scenarios import SCENARIOS
from .store import RunSpec, RunStore, store_key
from .sweep import SweepGrid, run_sweep

__all__ = [
    "__version__",
    "analysis",
    "telemetry",
    "misranking_probability_exact",
    "misranking_probability_gaussian",
    "optimal_sampling_rate",
    "FlowPopulation",
    "RankingModel",
    "DetectionModel",
    "required_sampling_rate",
    "ParetoFlowSizes",
    "Pipeline",
    "PipelineResult",
    "SAMPLERS",
    "KEY_POLICIES",
    "DISTRIBUTIONS",
    "TRACES",
    "SCENARIOS",
    "parse_spec",
    "RunSpec",
    "RunStore",
    "store_key",
    "SweepGrid",
    "run_sweep",
]
