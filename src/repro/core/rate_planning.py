"""Required sampling rate planning.

The operational question the paper motivates ("which sampling rate do I
need to configure on my router to trust the reported top-t list?") is
the inverse of the ranking/detection models: given a flow population, a
number of top flows and an accuracy target (by default fewer than one
swapped pair on average), find the minimum packet sampling rate.

Both the ranking and detection metrics are monotone non-increasing in
the sampling rate, so a bisection on ``log10(p)`` is sufficient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from .detection import DetectionModel
from .flow_size_model import FlowPopulation
from .ranking import RankingModel

Problem = Literal["ranking", "detection"]


@dataclass(frozen=True)
class RatePlan:
    """Outcome of a required-sampling-rate search.

    Attributes
    ----------
    problem:
        ``"ranking"`` or ``"detection"``.
    top_t:
        Number of top flows of interest.
    total_flows:
        Total number of flows in the measurement interval.
    target_swapped_pairs:
        Accuracy target on the average number of swapped pairs.
    required_rate:
        Minimum sampling rate meeting the target, or ``None`` when even
        full capture cannot meet it.
    achieved_swapped_pairs:
        Metric value at ``required_rate`` (or at rate 1.0 when the target
        is unreachable).
    """

    problem: Problem
    top_t: int
    total_flows: int
    target_swapped_pairs: float
    required_rate: float | None
    achieved_swapped_pairs: float

    @property
    def feasible(self) -> bool:
        """Whether some sampling rate meets the accuracy target."""
        return self.required_rate is not None


def _build_model(
    population: FlowPopulation, top_t: int, problem: Problem
) -> RankingModel | DetectionModel:
    if problem == "ranking":
        return RankingModel(population, top_t)
    if problem == "detection":
        return DetectionModel(population, top_t)
    raise ValueError(f"unknown problem {problem!r}")


def required_sampling_rate(
    population: FlowPopulation,
    top_t: int,
    problem: Problem = "ranking",
    target_swapped_pairs: float = 1.0,
    min_rate: float = 1e-4,
    tolerance: float = 0.02,
    max_iterations: int = 60,
) -> RatePlan:
    """Find the minimum sampling rate meeting a swapped-pairs target.

    Parameters
    ----------
    population:
        Flow population model.
    top_t:
        Number of top flows to rank or detect.
    problem:
        ``"ranking"`` (order must match) or ``"detection"`` (set must
        match).
    target_swapped_pairs:
        Acceptance threshold on the metric (paper uses 1.0).
    min_rate:
        Smallest rate considered (router vendors recommend 0.1%-1%, so
        searching below 0.01% is rarely meaningful).
    tolerance:
        Relative tolerance on the returned rate.
    """
    if target_swapped_pairs <= 0:
        raise ValueError("target_swapped_pairs must be positive")
    if not 0.0 < min_rate < 1.0:
        raise ValueError("min_rate must be in (0, 1)")
    model = _build_model(population, top_t, problem)

    at_full = model.swapped_pairs(1.0)
    if at_full > target_swapped_pairs:
        return RatePlan(
            problem=problem,
            top_t=model.top_t,
            total_flows=population.total_flows,
            target_swapped_pairs=float(target_swapped_pairs),
            required_rate=None,
            achieved_swapped_pairs=float(at_full),
        )
    if model.swapped_pairs(min_rate) <= target_swapped_pairs:
        return RatePlan(
            problem=problem,
            top_t=model.top_t,
            total_flows=population.total_flows,
            target_swapped_pairs=float(target_swapped_pairs),
            required_rate=float(min_rate),
            achieved_swapped_pairs=float(model.swapped_pairs(min_rate)),
        )

    low = np.log10(min_rate)
    high = 0.0  # log10(1.0)
    for _ in range(max_iterations):
        if 10**high / 10**low <= 1.0 + tolerance:
            break
        mid = 0.5 * (low + high)
        if model.swapped_pairs(10**mid) > target_swapped_pairs:
            low = mid
        else:
            high = mid
    rate = float(10**high)
    return RatePlan(
        problem=problem,
        top_t=model.top_t,
        total_flows=population.total_flows,
        target_swapped_pairs=float(target_swapped_pairs),
        required_rate=rate,
        achieved_swapped_pairs=float(model.swapped_pairs(rate)),
    )


def ranking_vs_detection_gain(
    population: FlowPopulation,
    top_t: int,
    target_swapped_pairs: float = 1.0,
    min_rate: float = 1e-4,
) -> float:
    """Ratio between the required ranking rate and the required detection rate.

    The paper's headline observation is that this gain is roughly an
    order of magnitude.  Returns ``inf`` when ranking is infeasible but
    detection is feasible, and ``nan`` when both are infeasible.
    """
    ranking = required_sampling_rate(
        population, top_t, "ranking", target_swapped_pairs, min_rate=min_rate
    )
    detection = required_sampling_rate(
        population, top_t, "detection", target_swapped_pairs, min_rate=min_rate
    )
    if ranking.required_rate is None and detection.required_rate is None:
        return float("nan")
    if ranking.required_rate is None:
        return float("inf")
    if detection.required_rate is None:
        return float("nan")
    return ranking.required_rate / detection.required_rate


__all__ = ["required_sampling_rate", "ranking_vs_detection_gain", "RatePlan"]
