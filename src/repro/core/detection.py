"""Analytical model for detecting the top-t flows (Section 7 of the paper).

The detection problem relaxes the ranking problem: the monitor must
report the correct *set* of the ``t`` largest flows, but their relative
order inside the set does not matter.  Pairs are therefore formed by one
flow inside the true top-t list and one flow outside of it; the metric is
the average number of such pairs that are swapped after sampling,
``t * (N - t) * P̄*mt``, where (paper, Section 7.1)::

    P̄*mt = (1 / P̄*t) * sum_i sum_{j<i} p_i p_j P*t(j, i, t, N) Pm(j, i)

    P*t(j, i, t, N) = sum_{k=0}^{t-1} b_{P_i}(k, N-2)
                      * sum_{l=t-k-1}^{N-k-2} b_{P_{j,i}}(l, N-k-2)

with ``P_{j,i} = (P_j - P_i) / (1 - P_i)`` the probability that a flow
size falls between ``j`` and ``i`` given that it is below ``i``, and
``P̄*t = t (N - t) / (N (N - 1))``.

As in the ranking model, the pairwise term uses the Gaussian
approximation by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np
from scipy import stats

from .flow_size_model import FlowPopulation
from .gaussian import misranking_matrix_gaussian
from .misranking import misranking_matrix_exact

PairwiseMethod = Literal["gaussian", "exact"]


@dataclass(frozen=True)
class DetectionAccuracy:
    """Result of evaluating the detection model at one sampling rate."""

    sampling_rate: float
    top_t: int
    total_flows: int
    mean_misranking_probability: float
    swapped_pairs: float

    @property
    def acceptable(self) -> bool:
        """Paper's acceptance criterion: fewer than one swapped pair on average."""
        return self.swapped_pairs < 1.0

    @property
    def pair_count(self) -> float:
        """Number of (top flow, non-top flow) pairs the metric averages over."""
        return float(self.top_t * (self.total_flows - self.top_t))


class DetectionModel:
    """Average-swapped-pairs model for the top-t detection problem.

    Parameters mirror :class:`repro.core.ranking.RankingModel`.  For
    ``top_t == 1`` detection and ranking coincide (the paper makes the
    same observation), which is used as a cross-check in the test suite.
    """

    def __init__(
        self,
        population: FlowPopulation,
        top_t: int,
        method: PairwiseMethod = "gaussian",
    ) -> None:
        self.population = population
        self.top_t = population.validate_top_t(top_t)
        if method not in ("gaussian", "exact"):
            raise ValueError(f"unknown pairwise method {method!r}")
        self.method = method
        self._joint_membership = self._compute_joint_membership()

    # ------------------------------------------------------------------
    def _compute_joint_membership(self) -> np.ndarray:
        """``P*t(j, i, t, N)`` for every grid pair ``j < i``.

        Returns a lower-triangular matrix ``J`` with ``J[i, j]`` the
        probability that a flow of size ``x_i`` is in the top t while a
        flow of size ``x_j < x_i`` is not.  Independent of the sampling
        rate, so computed once per model.
        """
        n = self.population.total_flows
        t = self.top_t
        tails = self.population.tail_probabilities
        num_points = tails.size
        joint = np.zeros((num_points, num_points), dtype=float)
        k_values = np.arange(t)
        for i in range(1, num_points):
            tail_i = tails[i]
            tail_j = tails[:i]
            # P{size between x_j and x_i | size below x_i}
            denom = max(1.0 - tail_i, 1e-300)
            between = np.clip((tail_j - tail_i) / denom, 0.0, 1.0)
            # outer_prob[k] = b_{P_i}(k, N-2)
            outer_prob = stats.binom.pmf(k_values, n - 2, tail_i)
            acc = np.zeros(i, dtype=float)
            for k in k_values:
                trials = n - k - 2
                threshold = t - k - 2
                if threshold < 0:
                    inner = np.ones(i, dtype=float)
                else:
                    inner = stats.binom.sf(threshold, trials, between)
                acc += outer_prob[k] * inner
            joint[i, :i] = acc
        return joint

    def _pairwise_matrix(self, sampling_rate: float) -> np.ndarray:
        sizes = self.population.sizes
        if self.method == "gaussian":
            return misranking_matrix_gaussian(sizes, sampling_rate)
        return misranking_matrix_exact(np.maximum(np.rint(sizes), 1).astype(int), sampling_rate)

    # ------------------------------------------------------------------
    def mean_misranking_probability(self, sampling_rate: float) -> float:
        """``P̄*mt``: swap probability of a random (top flow, non-top flow) pair."""
        q = self.population.probabilities
        pairwise = self._pairwise_matrix(sampling_rate)
        n = self.population.total_flows
        t = self.top_t
        joint_normaliser = t * (n - t) / (n * (n - 1.0))
        weighted = (q[:, None] * q[None, :]) * self._joint_membership * pairwise
        total = float(np.tril(weighted, k=-1).sum())
        return float(np.clip(total / joint_normaliser, 0.0, 1.0))

    def evaluate(self, sampling_rate: float) -> DetectionAccuracy:
        """Evaluate the detection metric at one sampling rate."""
        if not 0.0 < sampling_rate <= 1.0:
            raise ValueError(f"sampling_rate must be in (0, 1], got {sampling_rate}")
        pbar = self.mean_misranking_probability(sampling_rate)
        n = self.population.total_flows
        metric = self.top_t * (n - self.top_t) * pbar
        return DetectionAccuracy(
            sampling_rate=float(sampling_rate),
            top_t=self.top_t,
            total_flows=n,
            mean_misranking_probability=pbar,
            swapped_pairs=float(metric),
        )

    def swapped_pairs(self, sampling_rate: float) -> float:
        """Shorthand for ``evaluate(p).swapped_pairs``."""
        return self.evaluate(sampling_rate).swapped_pairs

    def metric_curve(self, sampling_rates: Sequence[float]) -> np.ndarray:
        """Evaluate the metric over a sweep of sampling rates (one figure line)."""
        return np.array([self.swapped_pairs(p) for p in sampling_rates], dtype=float)


__all__ = ["DetectionModel", "DetectionAccuracy"]
