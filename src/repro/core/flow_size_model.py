"""Flow population model shared by the ranking and detection engines.

The analytical models of Sections 5-7 of the paper need three inputs:

* a flow size distribution (``p_i`` in the paper);
* the total number of flows ``N`` observed in the measurement interval;
* a discretisation of the distribution that the numerical engines can
  iterate over.

:class:`FlowPopulation` packages those together and precomputes the tail
probabilities used by the order-statistics terms (``P_i`` in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..distributions.base import DiscretizedFlowSizes, FlowSizeDistribution

#: Default number of support points used to discretise continuous
#: distributions.  400 log-spaced points keep the Fig. 4-11 curves smooth
#: while evaluating in milliseconds.
DEFAULT_GRID_POINTS = 400

#: Default tail probability beyond which the discretisation grid stops.
DEFAULT_TAIL_PROBABILITY = 1e-10


@dataclass(frozen=True)
class FlowPopulation:
    """The population of flows on the monitored link during one interval.

    Attributes
    ----------
    distribution:
        Flow size distribution of a *generic* flow.
    total_flows:
        Total number of flows ``N`` in the measurement interval.
    grid:
        Discretised support used by the numerical engines.
    """

    distribution: FlowSizeDistribution
    total_flows: int
    grid: DiscretizedFlowSizes = field(repr=False)

    @classmethod
    def from_distribution(
        cls,
        distribution: FlowSizeDistribution,
        total_flows: int,
        grid_points: int = DEFAULT_GRID_POINTS,
        tail_probability: float = DEFAULT_TAIL_PROBABILITY,
    ) -> "FlowPopulation":
        """Build a population, discretising the distribution if needed."""
        if total_flows < 2:
            raise ValueError(f"total_flows must be at least 2, got {total_flows}")
        grid = distribution.discretize(
            num_points=grid_points, tail_probability=tail_probability
        )
        return cls(distribution=distribution, total_flows=int(total_flows), grid=grid)

    @classmethod
    def from_grid(
        cls,
        grid: DiscretizedFlowSizes,
        total_flows: int,
        distribution: FlowSizeDistribution | None = None,
    ) -> "FlowPopulation":
        """Build a population directly from a discretised distribution."""
        if total_flows < 2:
            raise ValueError(f"total_flows must be at least 2, got {total_flows}")
        if distribution is None:
            from ..distributions.discrete import DiscreteFlowSizes

            sizes = np.maximum(np.rint(grid.sizes), 1).astype(int)
            distribution = DiscreteFlowSizes(sizes, grid.probabilities)
        return cls(distribution=distribution, total_flows=int(total_flows), grid=grid)

    # ------------------------------------------------------------------
    @property
    def sizes(self) -> np.ndarray:
        """Support points (flow sizes in packets)."""
        return self.grid.sizes

    @property
    def probabilities(self) -> np.ndarray:
        """Probability mass of each support point."""
        return self.grid.probabilities

    @property
    def tail_probabilities(self) -> np.ndarray:
        """``P{S > size_i}`` for each support point (strict tail)."""
        return self.grid.strict_tail()

    @property
    def mean_flow_size(self) -> float:
        """Mean flow size of the discretised model, in packets."""
        return self.grid.mean

    def expected_top_flow_size(self, rank: int) -> float:
        """Approximate expected size of the flow of a given rank.

        Uses the quantile of the fitted distribution at level
        ``1 - rank / (N + 1)``, the standard order-statistic
        approximation.  Useful for sanity checks and for reasoning about
        why larger ``N`` makes ranking easier (Section 6.3).
        """
        if rank < 1 or rank > self.total_flows:
            raise ValueError("rank must lie between 1 and total_flows")
        level = 1.0 - rank / (self.total_flows + 1.0)
        return float(self.distribution.quantile(level))

    def validate_top_t(self, top_t: int) -> int:
        """Check that a requested number of top flows is feasible."""
        t = int(top_t)
        if t < 1:
            raise ValueError(f"top_t must be at least 1, got {top_t}")
        if t >= self.total_flows:
            raise ValueError(
                f"top_t ({top_t}) must be smaller than the total number of flows "
                f"({self.total_flows})"
            )
        return t


__all__ = ["FlowPopulation", "DEFAULT_GRID_POINTS", "DEFAULT_TAIL_PROBABILITY"]
