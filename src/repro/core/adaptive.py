"""Adaptive sampling-rate control (the paper's third future-work direction).

Section 9 of the paper sketches "adaptive schemes that set the sampling
rate based on the characteristics of the observed traffic".  This module
implements such a controller: after every measurement interval it
re-estimates the traffic characteristics from the *sampled* flows
(total number of flows and flow size distribution, via the aggregate
inversion estimators) and picks the smallest sampling rate whose
predicted ranking/detection metric meets the operator's accuracy target
for the next interval.

The controller is deliberately conservative: estimates inverted from a
low sampling rate are noisy, so the rate is only decreased by a bounded
factor per step while increases are applied immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from ..distributions.empirical import EmpiricalFlowSizes
from ..inversion.counts import invert_aggregates
from .flow_size_model import FlowPopulation
from .rate_planning import Problem, required_sampling_rate


@dataclass(frozen=True)
class AdaptiveStep:
    """Outcome of one control step (one measurement interval)."""

    interval_index: int
    applied_rate: float
    estimated_total_flows: float
    estimated_mean_flow_size: float
    recommended_rate: float
    next_rate: float


@dataclass
class AdaptiveRateController:
    """Chooses the packet sampling rate for the next measurement interval.

    Parameters
    ----------
    top_t:
        Number of top flows the operator wants to report.
    problem:
        ``"ranking"`` or ``"detection"``.
    target_swapped_pairs:
        Accuracy target on the predicted average number of swapped pairs.
    initial_rate:
        Rate used for the first interval, before any traffic has been seen.
    min_rate, max_rate:
        Bounds the controller may never leave.
    max_decrease_factor:
        The rate may shrink by at most this factor per interval (increases
        are unbounded within ``max_rate``), protecting against noisy
        estimates obtained at low rates.
    """

    top_t: int = 10
    problem: Problem = "detection"
    target_swapped_pairs: float = 1.0
    initial_rate: float = 0.1
    min_rate: float = 1e-3
    max_rate: float = 1.0
    max_decrease_factor: float = 4.0
    history: list[AdaptiveStep] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.top_t < 1:
            raise ValueError("top_t must be at least 1")
        if not 0.0 < self.min_rate <= self.initial_rate <= self.max_rate <= 1.0:
            raise ValueError("need 0 < min_rate <= initial_rate <= max_rate <= 1")
        if self.target_swapped_pairs <= 0:
            raise ValueError("target_swapped_pairs must be positive")
        if self.max_decrease_factor < 1.0:
            raise ValueError("max_decrease_factor must be at least 1")
        self._current_rate = float(self.initial_rate)

    # ------------------------------------------------------------------
    @property
    def current_rate(self) -> float:
        """Sampling rate to apply to the upcoming measurement interval."""
        return self._current_rate

    def observe_interval(self, sampled_flow_sizes: Sequence[int]) -> AdaptiveStep:
        """Feed the sampled flow sizes of the interval that just ended.

        Parameters
        ----------
        sampled_flow_sizes:
            Sampled packet counts of every flow seen in the interval
            (each at least 1 packet).

        Returns
        -------
        AdaptiveStep
            The inversion results and the rate chosen for the next
            interval.
        """
        applied_rate = self._current_rate
        sizes = np.asarray(list(sampled_flow_sizes), dtype=np.int64)
        interval_index = len(self.history)

        if sizes.size < 2 * self.top_t:
            # Too little signal to re-plan: fall back to the maximum rate,
            # the safe direction for accuracy.
            next_rate = min(self.max_rate, applied_rate * self.max_decrease_factor)
            step = AdaptiveStep(
                interval_index=interval_index,
                applied_rate=applied_rate,
                estimated_total_flows=float(sizes.size),
                estimated_mean_flow_size=float(sizes.mean()) if sizes.size else 0.0,
                recommended_rate=next_rate,
                next_rate=next_rate,
            )
            self.history.append(step)
            self._current_rate = next_rate
            return step

        aggregates = invert_aggregates(sizes, applied_rate)
        estimated_flows = max(2 * self.top_t, int(round(aggregates.estimated_total_flows)))

        # Reconstruct an (approximate) original flow size distribution by
        # scaling the sampled sizes up by 1/p.  The heavy tail — which is
        # what the ranking model is sensitive to — survives this scaling.
        scaled_sizes = np.maximum(np.rint(sizes / applied_rate), 1).astype(np.int64)
        population = FlowPopulation.from_grid(
            EmpiricalFlowSizes(scaled_sizes).discretize(),
            total_flows=estimated_flows,
        )
        plan = required_sampling_rate(
            population,
            top_t=min(self.top_t, estimated_flows - 1),
            problem=self.problem,
            target_swapped_pairs=self.target_swapped_pairs,
            min_rate=self.min_rate,
        )
        recommended = plan.required_rate if plan.feasible else self.max_rate

        floor = applied_rate / self.max_decrease_factor
        next_rate = float(np.clip(recommended, max(self.min_rate, floor), self.max_rate))

        step = AdaptiveStep(
            interval_index=interval_index,
            applied_rate=applied_rate,
            estimated_total_flows=aggregates.estimated_total_flows,
            estimated_mean_flow_size=aggregates.estimated_mean_flow_size,
            recommended_rate=float(recommended),
            next_rate=next_rate,
        )
        self.history.append(step)
        self._current_rate = next_rate
        return step


__all__ = ["AdaptiveRateController", "AdaptiveStep"]
