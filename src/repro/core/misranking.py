"""Exact misranking probability of two flows under packet sampling.

Section 3 of the paper: two flows of original sizes ``S1`` and ``S2``
packets are sampled independently packet-by-packet with probability
``p``.  Their sampled sizes ``s1`` and ``s2`` follow binomial
distributions, and the pair is *misranked* when the originally smaller
flow receives at least as many sampled packets as the larger one (which
also covers the case where both flows vanish from the sampled stream).

For ``S1 < S2`` (Eq. 1 of the paper)::

    Pm(S1, S2) = sum_{i=0}^{S1} b_p(i, S1) * sum_{j=0}^{i} b_p(j, S2)

and for two flows of identical size ``S``::

    Pm(S, S) = 1 - sum_{i=1}^{S} b_p(i, S)^2
"""

from __future__ import annotations

import numpy as np
from scipy import stats


def _validate_rate(sampling_rate: float) -> float:
    rate = float(sampling_rate)
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"sampling_rate must be in (0, 1], got {sampling_rate}")
    return rate


def _validate_size(size: int, name: str = "size") -> int:
    value = int(size)
    if value < 1:
        raise ValueError(f"{name} must be at least 1 packet, got {size}")
    return value


def misranking_probability_exact(size_a: int, size_b: int, sampling_rate: float) -> float:
    """Exact probability that two flows are misranked after sampling.

    Implements Eq. 1 of the paper (and the equal-size special case).
    The function is symmetric in its size arguments.

    Parameters
    ----------
    size_a, size_b:
        Original flow sizes in packets (positive integers).
    sampling_rate:
        Packet sampling probability ``p`` in ``(0, 1]``.

    Returns
    -------
    float
        ``P{misranking}`` in ``[0, 1]``.

    Examples
    --------
    >>> misranking_probability_exact(1, 100, 1.0)
    0.0
    >>> 0.0 < misranking_probability_exact(50, 60, 0.01) < 1.0
    True
    """
    p = _validate_rate(sampling_rate)
    s_small = _validate_size(min(size_a, size_b), "size")
    s_large = _validate_size(max(size_a, size_b), "size")

    if s_small == s_large:
        return misranking_probability_equal_sizes(s_small, p)

    i = np.arange(0, s_small + 1)
    pmf_small = stats.binom.pmf(i, s_small, p)
    cdf_large = stats.binom.cdf(i, s_large, p)
    return float(np.clip(np.dot(pmf_small, cdf_large), 0.0, 1.0))


def misranking_probability_equal_sizes(size: int, sampling_rate: float) -> float:
    """Misranking probability for two flows of the same original size.

    Two equal flows are considered correctly ranked only when their
    sampled sizes are equal and non-zero (paper, end of Section 3):
    ``P{misrank} = 1 - sum_{i=1}^{S} b_p(i, S)^2``.
    """
    p = _validate_rate(sampling_rate)
    s = _validate_size(size)
    i = np.arange(1, s + 1)
    pmf = stats.binom.pmf(i, s, p)
    return float(np.clip(1.0 - np.dot(pmf, pmf), 0.0, 1.0))


def minimum_misranking_probability(size: int, sampling_rate: float) -> float:
    """Misranking probability of a flow of ``size`` packets vs a 1-packet flow.

    Section 3.1 shows this is the smallest misranking probability a flow
    of a given size can achieve over all possible opponents:
    ``(1-p)^(S-1) * (1 - p + p^2 * S)``, which tends to zero as the flow
    grows.
    """
    p = _validate_rate(sampling_rate)
    s = _validate_size(size)
    return float((1.0 - p) ** (s - 1) * (1.0 - p + p * p * s))


def misranking_matrix_exact(
    sizes: np.ndarray,
    sampling_rate: float,
) -> np.ndarray:
    """Pairwise exact misranking probabilities for a vector of flow sizes.

    Returns a symmetric ``len(sizes) x len(sizes)`` matrix whose ``(i, j)``
    entry is ``Pm(sizes[i], sizes[j])``; the diagonal holds the
    equal-size probabilities.  Intended for the exact (small ``N``)
    ranking engine and for validating the Gaussian approximation.
    """
    p = _validate_rate(sampling_rate)
    size_arr = np.asarray(sizes, dtype=np.int64)
    if size_arr.ndim != 1:
        raise ValueError("sizes must be a 1-D array")
    if np.any(size_arr < 1):
        raise ValueError("all sizes must be at least 1 packet")
    n = size_arr.size
    matrix = np.empty((n, n), dtype=float)
    for i in range(n):
        matrix[i, i] = misranking_probability_equal_sizes(int(size_arr[i]), p)
        for j in range(i + 1, n):
            value = misranking_probability_exact(int(size_arr[i]), int(size_arr[j]), p)
            matrix[i, j] = value
            matrix[j, i] = value
    return matrix


def probability_larger_flow_sampled(size: int, sampling_rate: float) -> float:
    """Probability that at least one packet of a flow is sampled.

    The paper notes that sampling at least one packet from the larger
    flow is a necessary condition for ranking a pair correctly.
    """
    p = _validate_rate(sampling_rate)
    s = _validate_size(size)
    return float(1.0 - (1.0 - p) ** s)


__all__ = [
    "misranking_probability_exact",
    "misranking_probability_equal_sizes",
    "minimum_misranking_probability",
    "misranking_matrix_exact",
    "probability_larger_flow_sampled",
]
