"""Empirical ranking and detection metrics on observed flow lists.

The analytical models of Sections 5-7 predict the *average* number of
swapped flow pairs; the trace-driven simulations of Section 8 measure
the same quantity on concrete (original, sampled) flow size lists.  This
module implements that measurement, plus a few auxiliary rank-quality
metrics that are useful in practice even though they do not appear in
the paper (top-t set overlap, rank displacement).

Conventions (matching the analytical model):

* a pair is formed by one flow of the *true* top-t list and one other
  flow of the original traffic (for the ranking metric) or one flow
  outside the true top-t list (for the detection metric);
* a pair of flows with different original sizes is swapped when the
  originally smaller flow has a sampled size at least as large as the
  originally bigger flow's sampled size;
* a pair of flows with equal original sizes is swapped when their
  sampled sizes differ, or when both are zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np


def _as_aligned_arrays(
    original_sizes: Sequence[float] | Mapping[object, float],
    sampled_sizes: Sequence[float] | Mapping[object, float],
) -> tuple[np.ndarray, np.ndarray]:
    """Align original and sampled sizes into two same-length arrays.

    Both mappings (flow id -> size) and plain sequences are accepted;
    with mappings, flows absent from the sampled side count as size 0.
    """
    if isinstance(original_sizes, Mapping):
        if not isinstance(sampled_sizes, Mapping):
            raise TypeError("sampled_sizes must be a mapping when original_sizes is one")
        keys = list(original_sizes.keys())
        original = np.array([float(original_sizes[k]) for k in keys], dtype=float)
        sampled = np.array([float(sampled_sizes.get(k, 0.0)) for k in keys], dtype=float)
        return original, sampled
    original = np.asarray(list(original_sizes), dtype=float)
    sampled = np.asarray(list(sampled_sizes), dtype=float)
    if original.shape != sampled.shape:
        raise ValueError("original and sampled size lists must have the same length")
    return original, sampled


def _validate(original: np.ndarray, top_t: int) -> int:
    if original.ndim != 1:
        raise ValueError("flow sizes must form a 1-D array")
    if original.size < 2:
        raise ValueError("at least two flows are required")
    if np.any(original <= 0):
        raise ValueError("original flow sizes must be positive")
    t = int(top_t)
    if t < 1 or t > original.size:
        raise ValueError(f"top_t must be between 1 and the number of flows, got {top_t}")
    return t


def _pair_swapped(
    original_a: float,
    original_b: float,
    sampled_a: float,
    sampled_b: float,
) -> bool:
    """Whether the pair is swapped, following the paper's conventions."""
    if original_a == original_b:
        return sampled_a != sampled_b or (sampled_a == 0.0 and sampled_b == 0.0)
    if original_a > original_b:
        original_a, original_b = original_b, original_a
        sampled_a, sampled_b = sampled_b, sampled_a
    # Now a is the originally smaller flow.
    return sampled_a >= sampled_b


def true_top_indices(original_sizes: np.ndarray, top_t: int) -> np.ndarray:
    """Indices of the true top-t flows (ties broken by index for determinism)."""
    order = np.lexsort((np.arange(original_sizes.size), -original_sizes))
    return order[:top_t]


def ranking_swapped_pairs(
    original_sizes: Sequence[float] | Mapping[object, float],
    sampled_sizes: Sequence[float] | Mapping[object, float],
    top_t: int,
) -> int:
    """Number of swapped (top flow, any other flow) pairs — ranking metric.

    This is the quantity whose expectation the analytical
    :class:`~repro.core.ranking.RankingModel` computes; the total number
    of pairs considered is ``(2N - t - 1) * t / 2``.
    """
    original, sampled = _as_aligned_arrays(original_sizes, sampled_sizes)
    t = _validate(original, top_t)
    top = true_top_indices(original, t)
    top_set = set(int(i) for i in top)
    swapped = 0
    n = original.size
    for position, i in enumerate(top):
        for j in range(n):
            if j == i:
                continue
            # Count each (top, top) pair once: only when the partner comes
            # later in the top list or is outside the list.
            if j in top_set:
                j_position = int(np.where(top == j)[0][0])
                if j_position <= position:
                    continue
            if _pair_swapped(original[i], original[j], sampled[i], sampled[j]):
                swapped += 1
    return swapped


def detection_swapped_pairs(
    original_sizes: Sequence[float] | Mapping[object, float],
    sampled_sizes: Sequence[float] | Mapping[object, float],
    top_t: int,
) -> int:
    """Number of swapped (top flow, non-top flow) pairs — detection metric.

    The total number of pairs considered is ``t * (N - t)``.
    """
    original, sampled = _as_aligned_arrays(original_sizes, sampled_sizes)
    t = _validate(original, top_t)
    top = true_top_indices(original, t)
    top_set = set(int(i) for i in top)
    swapped = 0
    for i in top:
        for j in range(original.size):
            if j in top_set:
                continue
            if _pair_swapped(original[i], original[j], sampled[i], sampled[j]):
                swapped += 1
    return swapped


@dataclass(frozen=True)
class RankQualityReport:
    """Bundle of rank-quality indicators for one (original, sampled) pair."""

    top_t: int
    ranking_swapped_pairs: int
    detection_swapped_pairs: int
    top_set_overlap: float
    exact_order_match: bool
    mean_rank_displacement: float


def top_set_overlap(
    original_sizes: Sequence[float] | Mapping[object, float],
    sampled_sizes: Sequence[float] | Mapping[object, float],
    top_t: int,
) -> float:
    """Fraction of the true top-t flows present in the sampled top-t list."""
    original, sampled = _as_aligned_arrays(original_sizes, sampled_sizes)
    t = _validate(original, top_t)
    true_top = set(int(i) for i in true_top_indices(original, t))
    sampled_top = set(int(i) for i in true_top_indices(sampled + 1e-12, t))
    return len(true_top & sampled_top) / t


def rank_quality_report(
    original_sizes: Sequence[float] | Mapping[object, float],
    sampled_sizes: Sequence[float] | Mapping[object, float],
    top_t: int,
) -> RankQualityReport:
    """Compute all rank-quality indicators at once."""
    original, sampled = _as_aligned_arrays(original_sizes, sampled_sizes)
    t = _validate(original, top_t)
    ranking = ranking_swapped_pairs(original, sampled, t)
    detection = detection_swapped_pairs(original, sampled, t)
    overlap = top_set_overlap(original, sampled, t)

    true_top = true_top_indices(original, t)
    sampled_order = np.lexsort((np.arange(sampled.size), -sampled))
    sampled_rank_of = {int(idx): rank for rank, idx in enumerate(sampled_order)}
    displacements = [abs(sampled_rank_of[int(idx)] - rank) for rank, idx in enumerate(true_top)]
    exact = bool(all(sampled_rank_of[int(idx)] == rank for rank, idx in enumerate(true_top)))
    return RankQualityReport(
        top_t=t,
        ranking_swapped_pairs=ranking,
        detection_swapped_pairs=detection,
        top_set_overlap=overlap,
        exact_order_match=exact,
        mean_rank_displacement=float(np.mean(displacements)),
    )


__all__ = [
    "ranking_swapped_pairs",
    "detection_swapped_pairs",
    "top_set_overlap",
    "rank_quality_report",
    "RankQualityReport",
    "true_top_indices",
]
