"""Optimal (minimum) sampling rate for a target misranking probability.

Section 3.2 of the paper: for a pair of flow sizes and a desired
misranking probability ``Pm,d`` there is a unique sampling rate ``p_d``
such that any rate above it keeps the misranking probability below the
target.  Figures 1 and 2 of the paper plot this rate over a grid of flow
size pairs for ``Pm,d = 0.1%``.

Two solvers are provided:

* ``method="exact"`` — bisection on the exact binomial probability;
* ``method="gaussian"`` — closed-form inversion of Eq. 2, which is what
  makes the full Fig. 1/2 surfaces cheap to compute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np
from scipy import special

from .gaussian import misranking_probability_gaussian
from .misranking import misranking_probability_exact

Method = Literal["exact", "gaussian"]

#: Target misranking probability used for Figs. 1 and 2 of the paper.
PAPER_TARGET_MISRANKING = 1e-3


def optimal_rate_gaussian(size_a: float, size_b: float, target: float) -> float:
    """Closed-form optimal rate from the Gaussian approximation.

    Inverts Eq. 2: with ``d = |S2 - S1|`` and ``c = erfc^{-1}(2 * target)``,
    ``1/p - 1 = d^2 / (2 * (S1 + S2) * c^2)``.

    Returns 1.0 when even full capture cannot reach the target (equal
    sizes, where the Gaussian model gives a floor of 0.5).
    """
    if not 0.0 < target < 1.0:
        raise ValueError(f"target must be in (0, 1), got {target}")
    if size_a <= 0 or size_b <= 0:
        raise ValueError("flow sizes must be positive")
    diff = abs(float(size_b) - float(size_a))
    if diff == 0.0:
        return 1.0
    if target >= 0.5:
        # erfc(x)/2 < 0.5 for any x > 0: any rate achieves the target.
        return 0.0
    c = float(special.erfcinv(2.0 * target))
    inv_p_minus_1 = diff**2 / (2.0 * (float(size_a) + float(size_b)) * c**2)
    return float(min(1.0, 1.0 / (1.0 + inv_p_minus_1)))


def optimal_rate_exact(
    size_a: int,
    size_b: int,
    target: float,
    tolerance: float = 1e-6,
    max_iterations: int = 80,
) -> float:
    """Bisection on the exact misranking probability.

    Returns the smallest sampling rate whose exact misranking probability
    is at most ``target`` (1.0 when the target is unreachable even at
    full capture, e.g. equal flow sizes).
    """
    if not 0.0 < target < 1.0:
        raise ValueError(f"target must be in (0, 1), got {target}")
    if misranking_probability_exact(size_a, size_b, 1.0) > target:
        return 1.0
    low, high = 0.0, 1.0
    for _ in range(max_iterations):
        if high - low <= tolerance:
            break
        mid = 0.5 * (low + high)
        if mid <= 0.0:
            break
        if misranking_probability_exact(size_a, size_b, mid) > target:
            low = mid
        else:
            high = mid
    return float(high)


def optimal_sampling_rate(
    size_a: float,
    size_b: float,
    target: float = PAPER_TARGET_MISRANKING,
    method: Method = "gaussian",
) -> float:
    """Minimum sampling rate keeping the pair misranking below ``target``.

    Parameters
    ----------
    size_a, size_b:
        Original flow sizes in packets.
    target:
        Desired misranking probability ``Pm,d`` (paper default 0.1%).
    method:
        ``"gaussian"`` (closed form, default) or ``"exact"`` (bisection
        on the binomial model; sizes must be integers).
    """
    if method == "gaussian":
        return optimal_rate_gaussian(size_a, size_b, target)
    if method == "exact":
        return optimal_rate_exact(int(round(size_a)), int(round(size_b)), target)
    raise ValueError(f"unknown method {method!r}")


@dataclass(frozen=True)
class OptimalRateSurface:
    """Optimal sampling rate over a grid of flow size pairs (Figs. 1-2).

    Attributes
    ----------
    sizes_a, sizes_b:
        The two axes of the grid (flow sizes in packets).
    rates:
        ``rates[i, j]`` is the optimal sampling rate for the pair
        ``(sizes_a[i], sizes_b[j])``, as a fraction in ``[0, 1]``.
    target:
        Target misranking probability.
    """

    sizes_a: np.ndarray
    sizes_b: np.ndarray
    rates: np.ndarray
    target: float

    @property
    def rates_percent(self) -> np.ndarray:
        """Rates expressed in percent, as plotted in the paper."""
        return self.rates * 100.0

    def diagonal(self) -> np.ndarray:
        """Rates for equal-size pairs (the ridge of the surface)."""
        if self.sizes_a.shape != self.sizes_b.shape or np.any(self.sizes_a != self.sizes_b):
            raise ValueError("diagonal is defined only for a square grid with identical axes")
        return np.diag(self.rates)


def optimal_rate_surface(
    sizes_a: np.ndarray,
    sizes_b: np.ndarray | None = None,
    target: float = PAPER_TARGET_MISRANKING,
    method: Method = "gaussian",
) -> OptimalRateSurface:
    """Compute the optimal-sampling-rate surface of Figs. 1 and 2.

    Parameters
    ----------
    sizes_a:
        Flow sizes along the first axis.
    sizes_b:
        Flow sizes along the second axis (defaults to ``sizes_a``).
    target:
        Target misranking probability (paper: 0.1%).
    method:
        ``"gaussian"`` or ``"exact"``.
    """
    a = np.asarray(sizes_a, dtype=float)
    b = a if sizes_b is None else np.asarray(sizes_b, dtype=float)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("size axes must be 1-D arrays")
    rates = np.empty((a.size, b.size), dtype=float)
    if method == "gaussian":
        c = float(special.erfcinv(2.0 * target))
        diff = np.abs(b[None, :] - a[:, None])
        total = a[:, None] + b[None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            inv = diff**2 / (2.0 * total * c**2)
            rates = np.where(diff == 0.0, 1.0, np.minimum(1.0, 1.0 / (1.0 + inv)))
    else:
        for i, sa in enumerate(a):
            for j, sb in enumerate(b):
                rates[i, j] = optimal_sampling_rate(sa, sb, target, method=method)
    return OptimalRateSurface(sizes_a=a, sizes_b=b, rates=rates, target=float(target))


def verify_rate_achieves_target(
    size_a: int,
    size_b: int,
    sampling_rate: float,
    target: float,
) -> bool:
    """Check (with the exact model) that a rate meets a misranking target."""
    return misranking_probability_exact(size_a, size_b, sampling_rate) <= target


def gaussian_rate_is_consistent(size_a: float, size_b: float, target: float) -> bool:
    """Sanity check: the Gaussian-optimal rate achieves the Gaussian target."""
    rate = optimal_rate_gaussian(size_a, size_b, target)
    if rate >= 1.0 or rate <= 0.0:
        return True
    achieved = float(misranking_probability_gaussian(size_a, size_b, rate))
    return achieved <= target * (1.0 + 1e-9)


__all__ = [
    "PAPER_TARGET_MISRANKING",
    "optimal_sampling_rate",
    "optimal_rate_gaussian",
    "optimal_rate_exact",
    "optimal_rate_surface",
    "OptimalRateSurface",
    "verify_rate_achieves_target",
    "gaussian_rate_is_consistent",
]
