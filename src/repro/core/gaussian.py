"""Gaussian approximation of the misranking probability (Section 4).

When the sampling rate ``p`` is small and ``p * S`` is of the order of a
few packets, the binomial sampled size of a flow of ``S`` packets is well
approximated by a Normal distribution with mean ``p*S`` and variance
``p*(1-p)*S``.  The difference of the two sampled sizes is then Normal as
well, which yields the closed form of Eq. 2 of the paper::

    Pm(S1, S2) = 1/2 * erfc( |S2 - S1| / sqrt(2 * (1/p - 1) * (S1 + S2)) )

This module provides the approximation, its error against the exact
binomial computation, and the error surface reproduced in Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special

from .misranking import misranking_probability_exact


def misranking_probability_gaussian(
    size_a: np.ndarray | float,
    size_b: np.ndarray | float,
    sampling_rate: float,
) -> np.ndarray | float:
    """Gaussian approximation of the misranking probability (Eq. 2).

    Unlike the exact computation, sizes may be non-integer (the ranking
    engine treats the flow size distribution as continuous) and the
    function broadcasts over NumPy arrays.

    Parameters
    ----------
    size_a, size_b:
        Flow sizes in packets (positive, broadcastable).
    sampling_rate:
        Packet sampling probability ``p`` in ``(0, 1]``.

    Examples
    --------
    >>> float(misranking_probability_gaussian(100, 100, 0.1))
    0.5
    >>> float(misranking_probability_gaussian(10, 1000, 1.0))
    0.0
    """
    p = float(sampling_rate)
    if not 0.0 < p <= 1.0:
        raise ValueError(f"sampling_rate must be in (0, 1], got {sampling_rate}")
    a = np.asarray(size_a, dtype=float)
    b = np.asarray(size_b, dtype=float)
    if np.any(a <= 0) or np.any(b <= 0):
        raise ValueError("flow sizes must be positive")
    diff = np.abs(b - a)
    if p == 1.0:
        # No sampling noise: only exactly equal sizes can be "misranked"
        # (they tie), for which the Gaussian formula returns 1/2.
        out = np.where(diff == 0.0, 0.5, 0.0)
        scalar = np.isscalar(size_a) and np.isscalar(size_b)
        return float(out) if scalar else out
    denom = np.sqrt(2.0 * (1.0 / p - 1.0) * (a + b))
    out = 0.5 * special.erfc(diff / denom)
    scalar = np.isscalar(size_a) and np.isscalar(size_b)
    return float(out) if scalar else out


def misranking_matrix_gaussian(sizes: np.ndarray, sampling_rate: float) -> np.ndarray:
    """Pairwise Gaussian misranking probabilities for a vector of sizes."""
    size_arr = np.asarray(sizes, dtype=float)
    if size_arr.ndim != 1:
        raise ValueError("sizes must be a 1-D array")
    return np.asarray(
        misranking_probability_gaussian(size_arr[:, None], size_arr[None, :], sampling_rate)
    )


def gaussian_absolute_error(size_a: int, size_b: int, sampling_rate: float) -> float:
    """Absolute error of the Gaussian approximation for one flow pair."""
    exact = misranking_probability_exact(size_a, size_b, sampling_rate)
    approx = float(misranking_probability_gaussian(size_a, size_b, sampling_rate))
    return abs(exact - approx)


@dataclass(frozen=True)
class GaussianErrorSurface:
    """Absolute error of the Gaussian approximation on a size grid (Fig. 3).

    Attributes
    ----------
    sizes:
        Flow sizes (both axes of the surface).
    errors:
        ``errors[i, j]`` is ``|Pm_exact - Pm_gaussian|`` for the pair
        ``(sizes[i], sizes[j])``.
    sampling_rate:
        The packet sampling probability used.
    """

    sizes: np.ndarray
    errors: np.ndarray
    sampling_rate: float

    @property
    def max_error(self) -> float:
        """Largest absolute error over the grid."""
        return float(self.errors.max())

    def max_error_above(self, min_size: float, exclude_ties: bool = True) -> float:
        """Largest error restricted to pairs where one flow exceeds ``min_size``.

        The paper observes the approximation is accurate as soon as one
        of the two flows has ``p * S`` of a few packets; this helper
        quantifies exactly that claim.  Pairs of exactly equal sizes are
        excluded by default: for ties the exact model uses the special
        equal-size formula while the Gaussian model saturates at 1/2, so
        the comparison is not meaningful there.
        """
        mask = (self.sizes[:, None] >= min_size) | (self.sizes[None, :] >= min_size)
        if exclude_ties:
            mask &= self.sizes[:, None] != self.sizes[None, :]
        if not np.any(mask):
            raise ValueError("no grid pair satisfies the size constraint")
        return float(self.errors[mask].max())


def gaussian_error_surface(
    sizes: np.ndarray,
    sampling_rate: float,
) -> GaussianErrorSurface:
    """Compute the Fig. 3 error surface on an arbitrary grid of sizes."""
    size_arr = np.asarray(sizes, dtype=np.int64)
    if size_arr.ndim != 1 or size_arr.size == 0:
        raise ValueError("sizes must be a non-empty 1-D array")
    if np.any(size_arr < 1):
        raise ValueError("sizes must be at least 1 packet")
    n = size_arr.size
    errors = np.empty((n, n), dtype=float)
    approx = misranking_matrix_gaussian(size_arr.astype(float), sampling_rate)
    for i in range(n):
        for j in range(i, n):
            exact = misranking_probability_exact(int(size_arr[i]), int(size_arr[j]), sampling_rate)
            err = abs(exact - approx[i, j])
            errors[i, j] = err
            errors[j, i] = err
    return GaussianErrorSurface(sizes=size_arr.astype(float), errors=errors, sampling_rate=float(sampling_rate))


__all__ = [
    "misranking_probability_gaussian",
    "misranking_matrix_gaussian",
    "gaussian_absolute_error",
    "gaussian_error_surface",
    "GaussianErrorSurface",
]
