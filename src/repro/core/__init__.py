"""Core analytical models of the paper.

This subpackage implements the paper's primary contribution:

* the exact and Gaussian pairwise misranking probabilities (Sections 3-4);
* the optimal sampling rate for a pair of flows (Figures 1-2);
* the top-t ranking model and its swapped-pairs metric (Sections 5-6);
* the top-t detection model (Section 7);
* empirical counterparts of the metrics for trace-driven validation;
* required-sampling-rate planning built on top of the models.
"""

from .adaptive import AdaptiveRateController, AdaptiveStep
from .detection import DetectionAccuracy, DetectionModel
from .flow_size_model import FlowPopulation
from .gaussian import (
    GaussianErrorSurface,
    gaussian_absolute_error,
    gaussian_error_surface,
    misranking_matrix_gaussian,
    misranking_probability_gaussian,
)
from .metrics import (
    RankQualityReport,
    detection_swapped_pairs,
    rank_quality_report,
    ranking_swapped_pairs,
    top_set_overlap,
    true_top_indices,
)
from .misranking import (
    minimum_misranking_probability,
    misranking_matrix_exact,
    misranking_probability_equal_sizes,
    misranking_probability_exact,
    probability_larger_flow_sampled,
)
from .optimal_rate import (
    PAPER_TARGET_MISRANKING,
    OptimalRateSurface,
    optimal_rate_surface,
    optimal_sampling_rate,
)
from .ranking import RankingAccuracy, RankingModel
from .rate_planning import RatePlan, ranking_vs_detection_gain, required_sampling_rate

__all__ = [
    "AdaptiveRateController",
    "AdaptiveStep",
    "misranking_probability_exact",
    "misranking_probability_equal_sizes",
    "minimum_misranking_probability",
    "misranking_matrix_exact",
    "probability_larger_flow_sampled",
    "misranking_probability_gaussian",
    "misranking_matrix_gaussian",
    "gaussian_absolute_error",
    "gaussian_error_surface",
    "GaussianErrorSurface",
    "optimal_sampling_rate",
    "optimal_rate_surface",
    "OptimalRateSurface",
    "PAPER_TARGET_MISRANKING",
    "FlowPopulation",
    "RankingModel",
    "RankingAccuracy",
    "DetectionModel",
    "DetectionAccuracy",
    "ranking_swapped_pairs",
    "detection_swapped_pairs",
    "top_set_overlap",
    "rank_quality_report",
    "RankQualityReport",
    "true_top_indices",
    "required_sampling_rate",
    "ranking_vs_detection_gain",
    "RatePlan",
]
