"""Analytical model for ranking the top-t flows (Section 5 of the paper).

The monitor samples packets with probability ``p``, classifies them into
flows, and reports the ``t`` largest *sampled* flows in sorted order.
The paper quantifies the quality of that ranking with the **average
number of swapped flow pairs**, where a pair is formed by one true top-t
flow and any other flow of the original traffic:

* number of such pairs: ``(2N - t - 1) * t / 2``;
* probability that the pair formed by a top flow and a generic flow is
  swapped after sampling: ``P̄mt`` (Eq. 3 averaged over the size of the
  top flow);
* metric: ``(2N - t - 1) * t * P̄mt / 2`` — the ranking is deemed
  acceptable when the metric is below 1.

Two engines are provided:

* :class:`RankingModel` with ``method="gaussian"`` (default) evaluates
  Eq. 3 with the Gaussian pairwise approximation of Eq. 2 on the
  discretised flow size distribution.  This is what the paper uses for
  all its figures and it scales to millions of flows.
* ``method="exact"`` replaces the pairwise term with the exact binomial
  expression of Eq. 1.  It is meant for small flow populations and for
  validating the Gaussian engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np
from scipy import stats

from .flow_size_model import FlowPopulation
from .gaussian import misranking_matrix_gaussian
from .misranking import misranking_matrix_exact

PairwiseMethod = Literal["gaussian", "exact"]


@dataclass(frozen=True)
class RankingAccuracy:
    """Result of evaluating the ranking model at one sampling rate.

    Attributes
    ----------
    sampling_rate:
        Packet sampling probability ``p``.
    top_t:
        Number of top flows being ranked.
    total_flows:
        Total number of flows ``N``.
    mean_misranking_probability:
        ``P̄mt`` — the probability that a random (top flow, generic flow)
        pair is swapped.
    swapped_pairs:
        The paper's metric: average number of swapped pairs.
    """

    sampling_rate: float
    top_t: int
    total_flows: int
    mean_misranking_probability: float
    swapped_pairs: float

    @property
    def acceptable(self) -> bool:
        """Paper's acceptance criterion: fewer than one swapped pair on average."""
        return self.swapped_pairs < 1.0

    @property
    def pair_count(self) -> float:
        """Number of (top flow, other flow) pairs the metric averages over."""
        return (2 * self.total_flows - self.top_t - 1) * self.top_t / 2.0


class RankingModel:
    """Average-swapped-pairs model for the top-t ranking problem.

    Parameters
    ----------
    population:
        Flow population (size distribution + total number of flows).
    top_t:
        Number of top flows whose ranking must be preserved.
    method:
        Pairwise misranking model: ``"gaussian"`` (Eq. 2, default) or
        ``"exact"`` (Eq. 1; the grid sizes are rounded to integers).

    Examples
    --------
    >>> from repro.distributions import ParetoFlowSizes
    >>> from repro.core.flow_size_model import FlowPopulation
    >>> dist = ParetoFlowSizes.from_mean(mean=9.6, shape=1.5)
    >>> pop = FlowPopulation.from_distribution(dist, total_flows=10_000)
    >>> model = RankingModel(pop, top_t=1)
    >>> low = model.evaluate(0.001).swapped_pairs
    >>> high = model.evaluate(0.5).swapped_pairs
    >>> high < low
    True
    """

    def __init__(
        self,
        population: FlowPopulation,
        top_t: int,
        method: PairwiseMethod = "gaussian",
    ) -> None:
        self.population = population
        self.top_t = population.validate_top_t(top_t)
        if method not in ("gaussian", "exact"):
            raise ValueError(f"unknown pairwise method {method!r}")
        self.method = method
        # Order-statistics terms do not depend on the sampling rate, so
        # they are precomputed once per model instance.
        n = population.total_flows
        tails = population.tail_probabilities
        t = self.top_t
        #: Pt(i, t, N): probability that a flow of size x_i is in the top t.
        self._membership = stats.binom.cdf(t - 1, n - 1, tails)
        #: Pt(i, t, N-1): same with one generic flow removed (other flow smaller).
        self._membership_smaller = stats.binom.cdf(t - 1, n - 2, tails)
        #: Pt(i, t-1, N-1): other flow is at least as large and occupies a slot.
        if t >= 2:
            self._membership_larger = stats.binom.cdf(t - 2, n - 2, tails)
        else:
            self._membership_larger = np.zeros_like(tails)

    # ------------------------------------------------------------------
    def _pairwise_matrix(self, sampling_rate: float) -> np.ndarray:
        sizes = self.population.sizes
        if self.method != "gaussian":
            return misranking_matrix_exact(np.maximum(np.rint(sizes), 1).astype(int), sampling_rate)
        matrix = misranking_matrix_gaussian(sizes, sampling_rate)
        if not self.population.distribution.is_discrete:
            # Two *continuous* flows falling into the same grid bin are not
            # exact ties: their sizes differ by a fraction of the bin
            # width.  Replace the saturated erfc(0)/2 = 0.5 diagonal with
            # the misranking probability of two flows separated by the
            # mean within-bin gap, so that full capture converges to a
            # perfect ranking as in the continuous model.
            gaps = np.empty_like(sizes)
            gaps[1:-1] = (sizes[2:] - sizes[:-2]) / 2.0
            gaps[0] = sizes[1] - sizes[0]
            gaps[-1] = sizes[-1] - sizes[-2]
            within_bin_gap = gaps / 3.0
            if sampling_rate >= 1.0:
                np.fill_diagonal(matrix, 0.0)
            else:
                from scipy import special

                denom = np.sqrt(2.0 * (1.0 / sampling_rate - 1.0) * (2.0 * sizes))
                np.fill_diagonal(matrix, 0.5 * special.erfc(within_bin_gap / denom))
        return matrix

    def top_flow_size_pmf(self) -> np.ndarray:
        """Distribution of the size of a flow given that it is in the top t.

        ``Pt(i) = p_i * Pt(i, t, N) / (t / N)`` — used by tests and by the
        detection model's sanity checks; sums to 1 over the grid.
        """
        n = self.population.total_flows
        weights = self.population.probabilities * self._membership * (n / self.top_t)
        return weights

    def mean_misranking_probability(self, sampling_rate: float) -> float:
        """``P̄mt``: average swap probability of a (top flow, generic flow) pair."""
        q = self.population.probabilities
        pairwise = self._pairwise_matrix(sampling_rate)
        num_points = q.size
        # lower[i] = sum_{j < i} q_j Pm(x_j, x_i); upper[i] = sum_{j >= i} q_j Pm(x_i, x_j)
        weighted = pairwise * q[None, :]
        cumulative = np.cumsum(weighted, axis=1)
        lower = np.zeros(num_points)
        lower[1:] = cumulative[np.arange(1, num_points), np.arange(0, num_points - 1)]
        upper = cumulative[:, -1] - lower
        contribution = q * (self._membership_smaller * lower + self._membership_larger * upper)
        n = self.population.total_flows
        return float(np.clip(contribution.sum() * n / self.top_t, 0.0, 1.0))

    def evaluate(self, sampling_rate: float) -> RankingAccuracy:
        """Evaluate the swapped-pairs metric at one sampling rate."""
        if not 0.0 < sampling_rate <= 1.0:
            raise ValueError(f"sampling_rate must be in (0, 1], got {sampling_rate}")
        pbar = self.mean_misranking_probability(sampling_rate)
        n = self.population.total_flows
        metric = (2 * n - self.top_t - 1) * self.top_t * pbar / 2.0
        return RankingAccuracy(
            sampling_rate=float(sampling_rate),
            top_t=self.top_t,
            total_flows=n,
            mean_misranking_probability=pbar,
            swapped_pairs=float(metric),
        )

    def swapped_pairs(self, sampling_rate: float) -> float:
        """Shorthand for ``evaluate(p).swapped_pairs``."""
        return self.evaluate(sampling_rate).swapped_pairs

    def metric_curve(self, sampling_rates: Sequence[float]) -> np.ndarray:
        """Evaluate the metric over a sweep of sampling rates (one figure line)."""
        return np.array([self.swapped_pairs(p) for p in sampling_rates], dtype=float)


__all__ = ["RankingModel", "RankingAccuracy", "PairwiseMethod"]
