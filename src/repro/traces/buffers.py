"""Amortised chunk-assembly primitives for the streaming sources.

The streaming sources in :mod:`repro.traces.source` historically grew
their pending-packet state with ``np.concatenate`` per chunk and
re-sorted it from scratch with a full stable ``np.argsort`` — O(n)
fresh allocations plus an O(n log n) comparison sort per emitted chunk,
which capped packet *generation* near 5M pkt/s while the accounting
engine downstream runs at ~38M pkt/s.  This module provides the
primitives the fast assembly backend is built from:

* :class:`ChunkBuffer` — a growable columnar pending store (timestamps,
  flow ids, optional sizes) with amortised doubling appends and an O(1)
  consume-from-the-front cursor, replacing per-chunk concatenate churn.
  The buffer is internal state that is never handed out as an emitted
  chunk, so compaction and growth can safely reuse its backing arrays.
* :func:`stable_order` — a drop-in replacement for
  ``np.argsort(values, kind="stable")`` built on the (~5x faster on
  random float64 data) default introsort plus an exact tie fix-up:
  within every maximal run of equal values the permutation indices are
  sorted, which restores precisely the original-index order a stable
  sort guarantees.  Use it where the data is *random-dominated* (fresh
  packet placements).
* :func:`merge_sorted_runs` — an exact k-way merge of already-sorted
  runs, with ties resolved run-order-first (earlier run wins).  Use it
  where the data is *run-structured* (per-source pending cuts).

A measured note on :func:`merge_sorted_runs`: the obvious "clever"
implementation — splicing runs pairwise through ``np.searchsorted``
rank arithmetic — was benchmarked against concatenating the runs and
stable-argsorting, and lost in every regime (two equal 262k runs:
26ms spliced vs 14ms timsort; a 500-element run into 262k: 4.0ms vs
1.9ms).  NumPy's stable sort is timsort, whose run detection and
galloping merges make it a near-linear multi-run merge exactly when
the input is a concatenation of sorted runs — so the concat+argsort
shape *is* the fast path here, and the win over the reference backend
comes from sorting only random-dominated blocks with
:func:`stable_order`, amortising buffer growth, and emitting zero-copy
trusted chunks.  Keep the receipts in mind before "optimising" this
back.

>>> import numpy as np
>>> ts = np.array([3.0, 1.0, 3.0, 2.0])
>>> list(stable_order(ts)) == list(np.argsort(ts, kind="stable"))
True
>>> merged = merge_sorted_runs([
...     (np.array([1.0, 3.0]), np.array([10, 11]), None),
...     (np.array([1.0, 2.0]), np.array([20, 21]), None),
... ])
>>> merged[0].tolist(), merged[1].tolist()
([1.0, 1.0, 2.0, 3.0], [10, 20, 21, 11])
"""

from __future__ import annotations

import numpy as np

#: One sorted run: ``(timestamps, flow_ids, sizes_bytes or None)``.
SortedRun = tuple[np.ndarray, np.ndarray, "np.ndarray | None"]

#: Initial per-column capacity of a freshly grown :class:`ChunkBuffer`.
_MIN_CAPACITY = 1024


def stable_order(values: np.ndarray) -> np.ndarray:
    """Exact stable argsort of a 1-D float array, without the stable-sort tax.

    ``np.argsort(kind="stable")`` on ``float64`` is a comparison
    timsort — superb on run-structured data, ~5x slower than the
    default introsort on random data.  For random-dominated inputs this
    computes the unstable argsort and then repairs tie order: in the
    sorted output, every maximal run of equal values is located and the
    permutation indices inside the run are sorted ascending — which is
    exactly the original-index order a stable sort yields.  The result
    is bit-identical to the stable argsort for any input without NaNs.

    >>> import numpy as np
    >>> values = np.array([2.0, 1.0, 2.0, 1.0, 2.0])
    >>> np.array_equal(stable_order(values), np.argsort(values, kind="stable"))
    True
    """
    order = np.argsort(values)
    if order.size < 2:
        return order
    ordered = values[order]
    ties = np.flatnonzero(ordered[1:] == ordered[:-1])
    if ties.size:
        gaps = np.diff(ties) > 1
        run_starts = ties[np.concatenate(([True], gaps))]
        run_ends = ties[np.concatenate((gaps, [True]))] + 2
        for start, end in zip(run_starts, run_ends):
            order[start:end].sort()
    return order


def merge_sorted_runs(runs: list[SortedRun]) -> SortedRun:
    """Merge sorted runs into one sorted run, earlier runs winning ties.

    Semantically: concatenate the runs in order and stable-sort by
    timestamp — which is also the implementation, because NumPy's
    stable sort (timsort) detects the pre-sorted runs and galloping-
    merges them in near-linear time; see the module docstring for the
    measurements against explicit ``searchsorted`` splicing.  The
    returned columns are freshly allocated, so callers may emit
    zero-copy views into them; a single input run is copied for the
    same reason.  Sizes are carried iff every run carries them.

    >>> import numpy as np
    >>> ts, ids, _ = merge_sorted_runs([
    ...     (np.array([0.0, 2.0]), np.array([1, 1]), None),
    ...     (np.array([0.0, 1.0]), np.array([2, 2]), None),
    ... ])
    >>> ts.tolist(), ids.tolist()
    ([0.0, 0.0, 1.0, 2.0], [1, 2, 2, 1])
    """
    if not runs:
        raise ValueError("merge_sorted_runs needs at least one run")
    with_sizes = all(run[2] is not None for run in runs)
    if len(runs) == 1:
        ts, ids, sizes = runs[0]
        return ts.copy(), ids.copy(), sizes.copy() if with_sizes and sizes is not None else None
    ts = np.concatenate([run[0] for run in runs])
    ids = np.concatenate([run[1] for run in runs])
    order = np.argsort(ts, kind="stable")
    if with_sizes:
        sizes = np.concatenate([np.asarray(run[2]) for run in runs])
        return ts[order], ids[order], sizes[order]
    return ts[order], ids[order], None


class RunQueue:
    """FIFO of sorted runs forming one part's pending stream, zero-copy.

    Used by the merge fast path: each loaded chunk is enqueued as a
    run of *views* (no copy — inner sources emit freshly allocated or
    immutable columns), and :meth:`cut_below` slices off everything
    strictly below a bound as a list of runs ready for
    :func:`merge_sorted_runs`.  Runs are non-overlapping and in time
    order (chunks of one source are), so the cut walks whole runs and
    splits at most one.

    >>> import numpy as np
    >>> queue = RunQueue()
    >>> queue.append((np.array([1.0, 2.0]), np.array([1, 2]), None))
    >>> queue.append((np.array([2.0, 3.0]), np.array([3, 4]), None))
    >>> [run[0].tolist() for run in queue.cut_below(2.0)]
    [[1.0]]
    >>> queue.last_time()
    3.0
    """

    __slots__ = ("_runs",)

    def __init__(self) -> None:
        self._runs: list[SortedRun] = []

    def __bool__(self) -> bool:
        return bool(self._runs)

    def append(self, run: SortedRun) -> None:
        """Enqueue a non-empty sorted run (views are fine; never copied)."""
        if run[0].size:
            self._runs.append(run)

    def last_time(self) -> float:
        """Timestamp of the last pending packet (queue must be non-empty)."""
        return float(self._runs[-1][0][-1])

    def cut_below(self, bound: float) -> list[SortedRun]:
        """Detach and return every pending packet strictly below ``bound``.

        The returned runs preserve arrival (load) order, so merging
        them with earlier parts' runs first reproduces the reference
        tie order exactly.
        """
        out: list[SortedRun] = []
        for position, (ts, ids, sizes) in enumerate(self._runs):
            if ts[0] >= bound:
                # This and every later run sit at/after the bound.
                self._runs = self._runs[position:]
                return out
            if ts[-1] < bound:
                out.append((ts, ids, sizes))
                continue
            cut = int(np.searchsorted(ts, bound, side="left"))
            out.append((ts[:cut], ids[:cut], None if sizes is None else sizes[:cut]))
            remainder: SortedRun = (ts[cut:], ids[cut:], None if sizes is None else sizes[cut:])
            self._runs = [remainder, *self._runs[position + 1 :]]
            return out
        self._runs = []
        return out


class ChunkBuffer:
    """Growable columnar store for a source's pending (unemitted) packets.

    Columns are ``timestamps`` (float64), ``flow_ids`` (int64) and,
    when ``with_sizes`` is set, ``sizes_bytes`` (int32).  Appends are
    amortised O(1) per element (capacity doubles; the live region is
    compacted to the front when it helps), and :meth:`consume` advances
    a head cursor without touching data.

    The buffer's backing arrays are *reused* across appends and
    compactions, so nothing obtained from :attr:`timestamps` /
    :attr:`flow_ids` / :attr:`sizes_bytes` may be emitted or retained
    beyond the next mutating call — the fast assembly paths only ever
    read the views while gathering into freshly allocated output
    arrays.

    >>> import numpy as np
    >>> buf = ChunkBuffer()
    >>> buf.append(np.array([1.0, 2.0]), np.array([7, 8]))
    >>> buf.consume(1)
    >>> buf.append(np.array([3.0]), np.array([0]), id_offset=9)
    >>> buf.timestamps.tolist(), buf.flow_ids.tolist()
    ([2.0, 3.0], [8, 9])
    """

    __slots__ = ("_ts", "_ids", "_sizes", "_lo", "_hi")

    def __init__(self, with_sizes: bool = False, capacity: int = 0) -> None:
        capacity = max(int(capacity), 0)
        self._ts = np.empty(capacity, dtype=np.float64)
        self._ids = np.empty(capacity, dtype=np.int64)
        self._sizes: np.ndarray | None = (
            np.empty(capacity, dtype=np.int32) if with_sizes else None
        )
        self._lo = 0
        self._hi = 0

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of live (appended, not yet consumed) packets."""
        return self._hi - self._lo

    @property
    def capacity(self) -> int:
        """Allocated per-column capacity in packets (telemetry surface)."""
        return int(self._ts.size)

    @property
    def timestamps(self) -> np.ndarray:
        """View of the live timestamps (valid until the next mutation)."""
        return self._ts[self._lo : self._hi]

    @property
    def flow_ids(self) -> np.ndarray:
        """View of the live flow ids (valid until the next mutation)."""
        return self._ids[self._lo : self._hi]

    @property
    def sizes_bytes(self) -> np.ndarray | None:
        """View of the live sizes, or ``None`` for a sizeless buffer."""
        if self._sizes is None:
            return None
        return self._sizes[self._lo : self._hi]

    def run(self) -> SortedRun:
        """The live region as a :data:`SortedRun` of views."""
        return self.timestamps, self.flow_ids, self.sizes_bytes

    # ------------------------------------------------------------------
    def _reserve(self, extra: int) -> None:
        """Make room for ``extra`` more packets past the live region."""
        needed = self.size + extra
        if needed <= self._ts.size:
            if self._hi + extra > self._ts.size:
                # Enough total capacity — slide the live region to the
                # front (safe: the buffer is never emitted, so no view
                # escaping this object can alias the moved bytes).
                size = self.size
                self._ts[:size] = self._ts[self._lo : self._hi]
                self._ids[:size] = self._ids[self._lo : self._hi]
                if self._sizes is not None:
                    self._sizes[:size] = self._sizes[self._lo : self._hi]
                self._lo, self._hi = 0, size
            return
        capacity = max(self._ts.size * 2, needed, _MIN_CAPACITY)
        ts = np.empty(capacity, dtype=np.float64)
        ids = np.empty(capacity, dtype=np.int64)
        size = self.size
        ts[:size] = self._ts[self._lo : self._hi]
        ids[:size] = self._ids[self._lo : self._hi]
        if self._sizes is not None:
            sizes = np.empty(capacity, dtype=np.int32)
            sizes[:size] = self._sizes[self._lo : self._hi]
            self._sizes = sizes
        self._ts = ts
        self._ids = ids
        self._lo, self._hi = 0, size

    def grow(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Extend the live region by ``count`` uninitialised packets.

        Returns mutable ``(timestamps, flow_ids)`` views of the new
        region for the caller to fill in place — e.g. drawing packet
        placements directly into the buffer with ``rng.random(out=...)``
        instead of allocating a temporary per chunk.  Only valid for
        sizeless buffers (the expansion path's pending store).
        """
        if self._sizes is not None:
            raise ValueError("grow() is only supported on sizeless buffers")
        if count < 0:
            raise ValueError("count must be non-negative")
        self._reserve(count)
        lo, hi = self._hi, self._hi + count
        self._hi = hi
        return self._ts[lo:hi], self._ids[lo:hi]

    def append(
        self,
        timestamps: np.ndarray,
        flow_ids: np.ndarray,
        sizes_bytes: np.ndarray | None = None,
        id_offset: int = 0,
    ) -> None:
        """Append packets, optionally offsetting their flow ids in place.

        The offset is applied while copying into the buffer, fusing the
        ``flow_ids + offset`` temporary the reference path allocates.
        """
        count = int(timestamps.size)
        if count == 0:
            return
        self._reserve(count)
        lo, hi = self._hi, self._hi + count
        self._ts[lo:hi] = timestamps
        if id_offset:
            np.add(flow_ids, id_offset, out=self._ids[lo:hi])
        else:
            self._ids[lo:hi] = flow_ids
        if self._sizes is not None:
            if sizes_bytes is None:
                raise ValueError("buffer carries sizes; append them too")
            self._sizes[lo:hi] = sizes_bytes
        self._hi = hi

    def consume(self, count: int) -> None:
        """Drop ``count`` packets from the front (already merged out)."""
        if count < 0 or count > self.size:
            raise ValueError(f"cannot consume {count} of {self.size} packets")
        self._lo += count

    def replace(self, timestamps: np.ndarray, flow_ids: np.ndarray) -> None:
        """Reset the buffer to exactly the given (sizeless) columns."""
        self._lo = self._hi = 0
        self.append(timestamps, flow_ids)


__all__ = ["ChunkBuffer", "RunQueue", "SortedRun", "merge_sorted_runs", "stable_order"]
