"""Traffic trace substrate: flow-level traces, synthesis, packet expansion."""

from .expansion import expand_to_packets, expected_link_utilisation_bps
from .flow_trace import FlowLevelTrace
from .io import read_flow_trace_csv, write_flow_trace_csv
from .stats import TraceSummary, aggregate_sizes, summarize_trace
from .synthetic import (
    PAPER_TRACE_DURATION,
    SPRINT_FIVE_TUPLE_FLOWS_PER_SECOND,
    SPRINT_FIVE_TUPLE_MEAN_BYTES,
    SPRINT_MEAN_FLOW_DURATION,
    SPRINT_PREFIX_FLOWS_PER_SECOND,
    SPRINT_PREFIX_MEAN_BYTES,
    SyntheticTraceConfig,
    SyntheticTraceGenerator,
    abilene_like_config,
    sprint_like_config,
)

__all__ = [
    "FlowLevelTrace",
    "SyntheticTraceConfig",
    "SyntheticTraceGenerator",
    "sprint_like_config",
    "abilene_like_config",
    "expand_to_packets",
    "expected_link_utilisation_bps",
    "read_flow_trace_csv",
    "write_flow_trace_csv",
    "TraceSummary",
    "summarize_trace",
    "aggregate_sizes",
    "PAPER_TRACE_DURATION",
    "SPRINT_FIVE_TUPLE_FLOWS_PER_SECOND",
    "SPRINT_PREFIX_FLOWS_PER_SECOND",
    "SPRINT_FIVE_TUPLE_MEAN_BYTES",
    "SPRINT_PREFIX_MEAN_BYTES",
    "SPRINT_MEAN_FLOW_DURATION",
]
