"""CSV round-trip for flow-level traces.

Flow-level traces are small enough (one row per flow) to be exchanged as
plain CSV, which makes it easy to feed real exported NetFlow-style
records into the simulation, or to archive the synthetic traces used for
a given experiment run.

Columns: ``start_time,duration,packets,src_ip,dst_ip,src_port,dst_port,protocol``
with addresses in dotted-quad notation.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..flows.keys import int_to_ip, ip_to_int
from .flow_trace import FlowLevelTrace

_HEADER = [
    "start_time",
    "duration",
    "packets",
    "src_ip",
    "dst_ip",
    "src_port",
    "dst_port",
    "protocol",
]


def write_flow_trace_csv(trace: FlowLevelTrace, path: str | Path) -> None:
    """Write a flow-level trace to a CSV file."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for i in range(trace.num_flows):
            writer.writerow(
                [
                    f"{trace.start_times[i]:.6f}",
                    f"{trace.durations[i]:.6f}",
                    int(trace.sizes_packets[i]),
                    int_to_ip(int(trace.src_ips[i])),
                    int_to_ip(int(trace.dst_ips[i])),
                    int(trace.src_ports[i]),
                    int(trace.dst_ports[i]),
                    int(trace.protocols[i]),
                ]
            )


def read_flow_trace_csv(path: str | Path) -> FlowLevelTrace:
    """Read a flow-level trace from a CSV file written by :func:`write_flow_trace_csv`."""
    path = Path(path)
    rows: list[list[str]] = []
    with path.open("r", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _HEADER:
            raise ValueError(f"unexpected CSV header in {path}: {header}")
        rows = [row for row in reader if row]
    if not rows:
        raise ValueError(f"trace file {path} contains no flows")

    num_flows = len(rows)
    start_times = np.empty(num_flows)
    durations = np.empty(num_flows)
    sizes = np.empty(num_flows, dtype=np.int64)
    src_ips = np.empty(num_flows, dtype=np.uint32)
    dst_ips = np.empty(num_flows, dtype=np.uint32)
    src_ports = np.empty(num_flows, dtype=np.uint16)
    dst_ports = np.empty(num_flows, dtype=np.uint16)
    protocols = np.empty(num_flows, dtype=np.uint8)
    for i, row in enumerate(rows):
        start_times[i] = float(row[0])
        durations[i] = float(row[1])
        sizes[i] = int(row[2])
        src_ips[i] = ip_to_int(row[3])
        dst_ips[i] = ip_to_int(row[4])
        src_ports[i] = int(row[5])
        dst_ports[i] = int(row[6])
        protocols[i] = int(row[7])
    return FlowLevelTrace(
        start_times=start_times,
        durations=durations,
        sizes_packets=sizes,
        src_ips=src_ips,
        dst_ips=dst_ips,
        src_ports=src_ports,
        dst_ports=dst_ports,
        protocols=protocols,
    )


__all__ = ["write_flow_trace_csv", "read_flow_trace_csv"]
