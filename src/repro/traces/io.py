"""File round-trips for traces: flow-level CSV and packet-level CSV/NPZ.

Flow-level traces are small enough (one row per flow) to be exchanged as
plain CSV, which makes it easy to feed real exported NetFlow-style
records into the simulation, or to archive the synthetic traces used for
a given experiment run.  Flow-trace columns:
``start_time,duration,packets,src_ip,dst_ip,src_port,dst_port,protocol``
with addresses in dotted-quad notation.

Packet-level batches (:class:`~repro.flows.packets.PacketBatch`) round
trip too — as CSV (``timestamp,flow_id,size_bytes``, human-inspectable)
or as compressed NPZ (columnar, the format to prefer at scale).  The
matching streaming sources are
:class:`~repro.traces.source.CSVPacketSource` and
:class:`~repro.traces.source.NPZPacketSource`.  Empty batches round
trip as a header-only CSV / zero-length NPZ arrays.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..flows.keys import int_to_ip, ip_to_int
from ..flows.packets import PacketBatch
from .flow_trace import FlowLevelTrace

_HEADER = [
    "start_time",
    "duration",
    "packets",
    "src_ip",
    "dst_ip",
    "src_port",
    "dst_port",
    "protocol",
]


def write_flow_trace_csv(trace: FlowLevelTrace, path: str | Path) -> None:
    """Write a flow-level trace to a CSV file."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for i in range(trace.num_flows):
            writer.writerow(
                [
                    f"{trace.start_times[i]:.6f}",
                    f"{trace.durations[i]:.6f}",
                    int(trace.sizes_packets[i]),
                    int_to_ip(int(trace.src_ips[i])),
                    int_to_ip(int(trace.dst_ips[i])),
                    int(trace.src_ports[i]),
                    int(trace.dst_ports[i]),
                    int(trace.protocols[i]),
                ]
            )


def read_flow_trace_csv(path: str | Path) -> FlowLevelTrace:
    """Read a flow-level trace from a CSV file written by :func:`write_flow_trace_csv`."""
    path = Path(path)
    rows: list[list[str]] = []
    with path.open("r", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _HEADER:
            raise ValueError(f"unexpected CSV header in {path}: {header}")
        rows = [row for row in reader if row]
    if not rows:
        raise ValueError(f"trace file {path} contains no flows")

    num_flows = len(rows)
    start_times = np.empty(num_flows)
    durations = np.empty(num_flows)
    sizes = np.empty(num_flows, dtype=np.int64)
    src_ips = np.empty(num_flows, dtype=np.uint32)
    dst_ips = np.empty(num_flows, dtype=np.uint32)
    src_ports = np.empty(num_flows, dtype=np.uint16)
    dst_ports = np.empty(num_flows, dtype=np.uint16)
    protocols = np.empty(num_flows, dtype=np.uint8)
    for i, row in enumerate(rows):
        start_times[i] = float(row[0])
        durations[i] = float(row[1])
        sizes[i] = int(row[2])
        src_ips[i] = ip_to_int(row[3])
        dst_ips[i] = ip_to_int(row[4])
        src_ports[i] = int(row[5])
        dst_ports[i] = int(row[6])
        protocols[i] = int(row[7])
    return FlowLevelTrace(
        start_times=start_times,
        durations=durations,
        sizes_packets=sizes,
        src_ips=src_ips,
        dst_ips=dst_ips,
        src_ports=src_ports,
        dst_ports=dst_ports,
        protocols=protocols,
    )


_PACKET_HEADER = ["timestamp", "flow_id", "size_bytes"]


def write_packet_batch_csv(batch: PacketBatch, path: str | Path) -> None:
    """Write a packet batch to a CSV file (one row per packet).

    An empty batch writes just the header row, and
    :func:`read_packet_batch_csv` reads it back as an empty batch.
    """
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_PACKET_HEADER)
        for ts, flow_id, size in zip(batch.timestamps, batch.flow_ids, batch.sizes_bytes):
            writer.writerow([repr(float(ts)), int(flow_id), int(size)])


def read_packet_batch_csv(path: str | Path) -> PacketBatch:
    """Read a packet batch from a CSV written by :func:`write_packet_batch_csv`."""
    path = Path(path)
    with path.open("r", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _PACKET_HEADER:
            raise ValueError(f"unexpected packet CSV header in {path}: {header}")
        rows = [row for row in reader if row]
    timestamps = np.array([float(row[0]) for row in rows], dtype=np.float64)
    flow_ids = np.array([int(row[1]) for row in rows], dtype=np.int64)
    sizes = np.array([int(row[2]) for row in rows], dtype=np.int32)
    return PacketBatch(timestamps, flow_ids, sizes)


def write_packet_batch_npz(batch: PacketBatch, path: str | Path, compressed: bool = True) -> None:
    """Write a packet batch as an NPZ (columnar) file.

    ``compressed=False`` stores the columns raw inside the archive
    (larger on disk, but byte-aligned), which lets
    :func:`read_packet_batch_npz` memory-map them instead of
    decompressing into fresh heap arrays — the format to prefer for
    packet tables that are re-read many times at scale.
    """
    save = np.savez_compressed if compressed else np.savez
    save(
        Path(path),
        timestamps=batch.timestamps,
        flow_ids=batch.flow_ids,
        sizes_bytes=batch.sizes_bytes,
    )


def read_packet_batch_npz(path: str | Path, mmap: bool = False) -> PacketBatch:
    """Read a packet batch from an NPZ written by :func:`write_packet_batch_npz`.

    With ``mmap=True``, columns stored uncompressed are returned as
    read-only memory maps (zero-copy, paged in on demand); compressed
    columns degrade gracefully to the ordinary in-memory read.  The
    mapping outlives the archive handle, so the batch stays valid.
    """
    if mmap:
        data = np.load(Path(path), mmap_mode="r")
        missing = {"timestamps", "flow_ids", "sizes_bytes"} - set(data.files)
        if missing:
            raise ValueError(f"packet NPZ {path} is missing arrays: {sorted(missing)}")
        return PacketBatch(data["timestamps"], data["flow_ids"], data["sizes_bytes"])
    with np.load(Path(path)) as data:
        missing = {"timestamps", "flow_ids", "sizes_bytes"} - set(data.files)
        if missing:
            raise ValueError(f"packet NPZ {path} is missing arrays: {sorted(missing)}")
        return PacketBatch(data["timestamps"], data["flow_ids"], data["sizes_bytes"])


__all__ = [
    "write_flow_trace_csv",
    "read_flow_trace_csv",
    "write_packet_batch_csv",
    "read_packet_batch_csv",
    "write_packet_batch_npz",
    "read_packet_batch_npz",
]
