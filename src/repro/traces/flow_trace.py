"""Flow-level trace container.

The Sprint trace used by the paper (Section 8.1) is a *flow-level*
trace: for every flow it records the 5-tuple, the size, the duration and
the start time, but not the individual packets.  The paper regenerates
packets synthetically from those records; we mirror that pipeline with
:class:`FlowLevelTrace` (this module) and
:func:`repro.traces.expansion.expand_to_packets`.

The container is columnar (NumPy arrays) because realistic traces hold
hundreds of thousands to millions of flows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..flows.keys import DestinationPrefixKeyPolicy, FiveTuple, FiveTupleKeyPolicy, FlowKeyPolicy


@dataclass
class FlowLevelTrace:
    """Columnar flow-level trace.

    All arrays have one entry per flow.

    Attributes
    ----------
    start_times:
        Flow start times in seconds from the beginning of the trace.
    durations:
        Flow durations in seconds (0 for single-packet flows).
    sizes_packets:
        Flow sizes in packets.
    src_ips, dst_ips:
        IPv4 addresses as unsigned 32-bit integers.
    src_ports, dst_ports:
        Transport ports.
    protocols:
        IP protocol numbers.
    """

    start_times: np.ndarray
    durations: np.ndarray
    sizes_packets: np.ndarray
    src_ips: np.ndarray
    dst_ips: np.ndarray
    src_ports: np.ndarray
    dst_ports: np.ndarray
    protocols: np.ndarray

    def __post_init__(self) -> None:
        self.start_times = np.asarray(self.start_times, dtype=np.float64)
        self.durations = np.asarray(self.durations, dtype=np.float64)
        self.sizes_packets = np.asarray(self.sizes_packets, dtype=np.int64)
        self.src_ips = np.asarray(self.src_ips, dtype=np.uint32)
        self.dst_ips = np.asarray(self.dst_ips, dtype=np.uint32)
        self.src_ports = np.asarray(self.src_ports, dtype=np.uint16)
        self.dst_ports = np.asarray(self.dst_ports, dtype=np.uint16)
        self.protocols = np.asarray(self.protocols, dtype=np.uint8)
        n = self.start_times.size
        for name in ("durations", "sizes_packets", "src_ips", "dst_ips", "src_ports", "dst_ports", "protocols"):
            if getattr(self, name).size != n:
                raise ValueError(f"{name} must have one entry per flow")
        if np.any(self.start_times < 0):
            raise ValueError("start times must be non-negative")
        if np.any(self.durations < 0):
            raise ValueError("durations must be non-negative")
        if n and np.any(self.sizes_packets < 1):
            raise ValueError("flow sizes must be at least 1 packet")

    # ------------------------------------------------------------------
    @property
    def num_flows(self) -> int:
        """Number of flows in the trace."""
        return int(self.start_times.size)

    @property
    def total_packets(self) -> int:
        """Total number of packets the trace expands to."""
        return int(self.sizes_packets.sum())

    @property
    def duration(self) -> float:
        """Time span covered by the trace (last flow end minus first start)."""
        if self.num_flows == 0:
            return 0.0
        return float((self.start_times + self.durations).max() - self.start_times.min())

    @property
    def mean_flow_size(self) -> float:
        """Mean flow size in packets."""
        if self.num_flows == 0:
            return 0.0
        return float(self.sizes_packets.mean())

    @property
    def flow_arrival_rate(self) -> float:
        """Average number of flow arrivals per second."""
        span = self.duration
        if span <= 0:
            return 0.0
        return self.num_flows / span

    # ------------------------------------------------------------------
    def five_tuple(self, flow_index: int) -> FiveTuple:
        """The 5-tuple of one flow (object view, used by the object-level API)."""
        return FiveTuple(
            src_ip=int(self.src_ips[flow_index]),
            dst_ip=int(self.dst_ips[flow_index]),
            src_port=int(self.src_ports[flow_index]),
            dst_port=int(self.dst_ports[flow_index]),
            protocol=int(self.protocols[flow_index]),
        )

    def group_ids(self, key_policy: FlowKeyPolicy) -> np.ndarray:
        """Map every flow to an integer group id under a flow definition.

        With the 5-tuple policy each trace flow is its own group; with a
        destination-prefix policy flows sharing the prefix share a group.
        Group ids are arbitrary integers, suitable for ``np.unique``.
        """
        if isinstance(key_policy, FiveTupleKeyPolicy):
            return np.arange(self.num_flows, dtype=np.int64)
        if isinstance(key_policy, DestinationPrefixKeyPolicy):
            shift = 32 - key_policy.prefix_length
            if shift >= 32:
                return np.zeros(self.num_flows, dtype=np.int64)
            return (self.dst_ips >> np.uint32(shift)).astype(np.int64)
        # Generic fallback: hash the per-flow key objects.
        keys = [key_policy.key_of(self.five_tuple(i)) for i in range(self.num_flows)]
        _, inverse = np.unique(np.array([hash(k) for k in keys], dtype=np.int64), return_inverse=True)
        return inverse.astype(np.int64)

    def select(self, mask: np.ndarray) -> "FlowLevelTrace":
        """Return a sub-trace containing only the flows where ``mask`` is True."""
        mask_arr = np.asarray(mask, dtype=bool)
        if mask_arr.shape != self.start_times.shape:
            raise ValueError("mask must have one entry per flow")
        return FlowLevelTrace(
            start_times=self.start_times[mask_arr],
            durations=self.durations[mask_arr],
            sizes_packets=self.sizes_packets[mask_arr],
            src_ips=self.src_ips[mask_arr],
            dst_ips=self.dst_ips[mask_arr],
            src_ports=self.src_ports[mask_arr],
            dst_ports=self.dst_ports[mask_arr],
            protocols=self.protocols[mask_arr],
        )

    def time_window(self, start: float, end: float) -> "FlowLevelTrace":
        """Flows that start within ``[start, end)``."""
        if end <= start:
            raise ValueError("end must be greater than start")
        mask = (self.start_times >= start) & (self.start_times < end)
        return self.select(mask)

    def __repr__(self) -> str:
        return (
            f"FlowLevelTrace(num_flows={self.num_flows}, "
            f"total_packets={self.total_packets}, duration={self.duration:.1f}s)"
        )


__all__ = ["FlowLevelTrace"]
