"""Streaming packet sources: the abstraction the pipeline executes.

Historically the execution engine was hard-wired to one workload shape —
a :class:`~repro.traces.flow_trace.FlowLevelTrace` expanded into packets
by :func:`iter_expanded_chunks`.  This module turns that trace layer
into a first-class abstraction: a :class:`PacketSource` is anything that
can stream time-ordered :class:`~repro.flows.packets.PacketBatch`
chunks and map its flow ids to flow groups under a key policy.  The
pipeline (:mod:`repro.pipeline`) consumes any source, so new workloads
(bursts, diurnal load, population drift, multi-link monitoring) plug in
without touching the executor.

Every source honours two contracts, both inherited from the streaming
executor and asserted property-based in the test suite:

* **time order** — the concatenation of the yielded chunks is the
  globally time-sorted packet stream;
* **chunk-size invariance** — that concatenation (and any randomness
  consumed from the ``rng`` argument) is identical for every
  ``chunk_packets``, including ``None`` (one materialised chunk).

Sources compose: :class:`MergeSource` time-merges N sources (multi-link
monitoring), :class:`LoadScaleSource` deterministically thins or
replicates packets, and :class:`TimeWarpSource` reshapes the arrival
process through a monotone time warp (diurnal load).  The named
workloads built from these live in :mod:`repro.scenarios`.

Chunk *assembly* — how pending packets are buffered, ordered and cut
into emitted chunks — has two interchangeable backends (see
``docs/traces.md``, "Source throughput"): the default ``"fast"`` backend
builds on the amortised buffers and searchsorted merges of
:mod:`repro.traces.buffers`, while ``"reference"`` keeps the original
concatenate-and-stable-argsort implementation.  Both produce
bit-identical chunks (same boundaries, same dtypes) for every source,
chunk size and clip — property-tested in ``tests/test_sources.py`` and
re-asserted by the benchmark harness before any number is recorded.
Select per call (``assembly="reference"``) or per scope:

>>> import numpy as np
>>> from repro.traces.flow_trace import FlowLevelTrace
>>> trace = FlowLevelTrace(
...     start_times=[0.0, 1.0], durations=[5.0, 2.0], sizes_packets=[6, 3],
...     src_ips=[1, 2], dst_ips=[9, 9], src_ports=[1, 2], dst_ports=[80, 80],
...     protocols=[6, 6],
... )
>>> source = FlowTraceSource(trace)
>>> chunks = list(source.iter_chunks(np.random.default_rng(0), chunk_packets=4))
>>> sum(len(chunk) for chunk in chunks)
9
>>> with use_assembly("reference"):
...     reference = list(source.iter_chunks(np.random.default_rng(0), chunk_packets=4))
>>> all(
...     np.array_equal(a.timestamps, b.timestamps)
...     for a, b in zip(chunks, reference)
... )
True
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .. import telemetry
from ..flows.keys import FlowKeyPolicy
from ..flows.packets import DEFAULT_PACKET_SIZE_BYTES, PacketBatch
from .buffers import ChunkBuffer, RunQueue, SortedRun, merge_sorted_runs, stable_order
from .flow_trace import FlowLevelTrace

#: Default number of packets per streaming chunk.  Large enough to keep
#: the per-chunk NumPy work efficient, small enough that a chunk is a
#: rounding error next to a backbone-scale packet trace.
DEFAULT_CHUNK_PACKETS = 1 << 18

#: The two chunk-assembly backends: ``"fast"`` (amortised buffers +
#: searchsorted merges, the default) and ``"reference"`` (the original
#: concatenate + stable-argsort path, kept as the bit-checked oracle).
ASSEMBLY_BACKENDS = ("fast", "reference")

_assembly_default: str = "fast"


def default_assembly() -> str:
    """The chunk-assembly backend used when none is requested explicitly."""
    return _assembly_default


def _resolve_assembly(assembly: str | None) -> str:
    backend = _assembly_default if assembly is None else assembly
    if backend not in ASSEMBLY_BACKENDS:
        raise ValueError(
            f"unknown assembly backend {backend!r}; expected one of {ASSEMBLY_BACKENDS}"
        )
    return backend


@contextmanager
def use_assembly(backend: str) -> Iterator[None]:
    """Scope the default chunk-assembly backend (harness/test helper).

    This is an execution knob, not an experiment parameter: both
    backends emit bit-identical streams, so the choice must never reach
    a :class:`~repro.spec.RunSpec` or a store cache key.

    >>> with use_assembly("reference"):
    ...     default_assembly()
    'reference'
    >>> default_assembly()
    'fast'
    """
    global _assembly_default
    previous = _assembly_default
    _assembly_default = _resolve_assembly(backend)
    try:
        yield
    finally:
        _assembly_default = previous


def iter_expanded_chunks(
    trace: FlowLevelTrace,
    rng: np.random.Generator,
    chunk_packets: int | None = DEFAULT_CHUNK_PACKETS,
    clip_to_duration: float | None = None,
    packet_size_bytes: int = DEFAULT_PACKET_SIZE_BYTES,
    assembly: str | None = None,
) -> Iterator[PacketBatch]:
    """Expand a flow-level trace into time-ordered packet chunks.

    Flows are admitted in start-time order; each flow's packets are
    placed uniformly over its lifetime exactly as
    :func:`repro.traces.expansion.expand_to_packets` does, at the moment
    the flow is admitted.  Packets that fall beyond the start of the
    next unadmitted flow are buffered (no earlier packet can still
    arrive), and each emitted chunk is sorted by timestamp — so the
    concatenation of all chunks is the globally time-sorted packet
    stream, independent of the chunk size.

    Only the current chunk and the buffered tails of admitted flows are
    in memory at any time; with ``chunk_packets=None`` everything is
    admitted at once (materialised mode).

    Parameters
    ----------
    trace:
        The flow-level trace to expand.
    rng:
        Generator for the packet placements; consumed in flow
        start-time order, so the draw sequence — and therefore the
        packet stream — is identical for every chunk size.
    chunk_packets:
        Approximate packets per emitted chunk; ``None`` materialises
        the whole trace as one chunk.
    clip_to_duration:
        When given, packets at or beyond this time are dropped (flow
        tails that spill past the measurement window).
    packet_size_bytes:
        Constant per-packet size recorded in the emitted batches.
    assembly:
        Chunk-assembly backend (``"fast"``/``"reference"``); ``None``
        uses the scoped default (see :func:`use_assembly`).  Both
        backends yield bit-identical chunks.

    Yields
    ------
    PacketBatch
        Time-sorted packet chunks whose concatenation is the global
        time-sorted stream.
    """
    backend = _resolve_assembly(assembly)
    if telemetry.enabled:
        telemetry.gauge("source.assembly_backend", backend)
    if backend == "fast":
        return _iter_expanded_fast(trace, rng, chunk_packets, clip_to_duration, packet_size_bytes)
    return _iter_expanded_reference(trace, rng, chunk_packets, clip_to_duration, packet_size_bytes)


def _iter_expanded_reference(
    trace: FlowLevelTrace,
    rng: np.random.Generator,
    chunk_packets: int | None,
    clip_to_duration: float | None,
    packet_size_bytes: int,
) -> Iterator[PacketBatch]:
    """The original concatenate + stable-argsort expansion (oracle path)."""
    num_flows = trace.num_flows
    if num_flows == 0:
        return
    if chunk_packets is not None and chunk_packets < 1:
        raise ValueError("chunk_packets must be positive when given")

    # Admission (and RNG draw) order is start-time order, so the draw
    # sequence is the same for every chunk size.
    order = np.argsort(trace.start_times, kind="stable").astype(np.int64)
    starts = trace.start_times[order]
    durations = trace.durations[order]
    sizes = trace.sizes_packets[order]
    cumulative = np.cumsum(sizes)
    total_packets = int(cumulative[-1])
    target = total_packets if chunk_packets is None else int(chunk_packets)

    pending_ts = np.empty(0, dtype=np.float64)
    pending_ids = np.empty(0, dtype=np.int64)
    lo = 0
    while lo < num_flows or pending_ts.size:
        if lo < num_flows:
            # Admit the next block of flows (~target packets, at least one flow).
            base = int(cumulative[lo - 1]) if lo else 0
            hi = int(np.searchsorted(cumulative, base + target, side="right"))
            hi = max(hi, lo + 1)
            block_sizes = sizes[lo:hi]
            count = int(cumulative[hi - 1]) - base
            flow_ids = np.repeat(order[lo:hi], block_sizes)
            flow_starts = np.repeat(starts[lo:hi], block_sizes)
            flow_durations = np.repeat(durations[lo:hi], block_sizes)
            timestamps = flow_starts + rng.random(count) * flow_durations
            if clip_to_duration is not None:
                keep = timestamps < clip_to_duration
                timestamps = timestamps[keep]
                flow_ids = flow_ids[keep]
            pending_ts = np.concatenate((pending_ts, timestamps))  # reprolint: disable=source-hot-concat -- retained reference path, bit-checked against fast
            pending_ids = np.concatenate((pending_ids, flow_ids))  # reprolint: disable=source-hot-concat -- retained reference path, bit-checked against fast
            lo = hi
            frontier = float(starts[lo]) if lo < num_flows else np.inf
        else:
            frontier = np.inf

        # Packets before the next flow's start time are final: every
        # not-yet-admitted flow starts (and therefore transmits) later.
        emit = pending_ts < frontier
        if emit.any():
            emit_ts = pending_ts[emit]
            emit_ids = pending_ids[emit]
            pending_ts = pending_ts[~emit]
            pending_ids = pending_ids[~emit]
            sort = np.argsort(emit_ts, kind="stable")
            emit_ts = emit_ts[sort]
            emit_ids = emit_ids[sort]
            sizes_bytes = np.full(emit_ts.size, packet_size_bytes, dtype=np.int32)
            if telemetry.enabled:
                telemetry.count("source.chunks")
                telemetry.count("source.packets", int(emit_ts.size))
            yield PacketBatch(emit_ts, emit_ids, sizes_bytes)


def _iter_expanded_fast(
    trace: FlowLevelTrace,
    rng: np.random.Generator,
    chunk_packets: int | None,
    clip_to_duration: float | None,
    packet_size_bytes: int,
) -> Iterator[PacketBatch]:
    """Buffer-pooled expansion — bit-identical to the reference path.

    Per admission round the reference concatenates the new block onto
    the pending arrays, masks twice, and stable-argsorts the emitted
    subset (a slow comparison timsort on random placements).  Here the
    pending tail lives in a reusable :class:`ChunkBuffer`; the block's
    placements are drawn *into* the buffer (``rng.random(out=...)``,
    then scaled/shifted in place — IEEE-commutative, so the values are
    bitwise those of ``starts + u * durations``), the whole live region
    is ordered with :func:`stable_order` (introsort + exact tie
    fix-up), and the sorted columns are gathered once into fresh output
    arrays.  Clip and emission are then suffix/prefix ``searchsorted``
    cuts: emitted chunks are zero-copy views of the fresh arrays (never
    written again), and only the small pending tail is copied back into
    the buffer.  Stable ordering of the buffer's (pending ++ block) row
    order reproduces the reference's tie order exactly, by induction
    over rounds.
    """
    num_flows = trace.num_flows
    if num_flows == 0:
        return
    if chunk_packets is not None and chunk_packets < 1:
        raise ValueError("chunk_packets must be positive when given")

    order = np.argsort(trace.start_times, kind="stable").astype(np.int64)
    starts = trace.start_times[order]
    durations = trace.durations[order]
    sizes = trace.sizes_packets[order]
    cumulative = np.cumsum(sizes)
    total_packets = int(cumulative[-1])
    target = total_packets if chunk_packets is None else int(chunk_packets)

    pending = ChunkBuffer()
    lo = 0
    while lo < num_flows or pending.size:
        if lo < num_flows:
            base = int(cumulative[lo - 1]) if lo else 0
            hi = int(np.searchsorted(cumulative, base + target, side="right"))
            hi = max(hi, lo + 1)
            block_sizes = sizes[lo:hi]
            count = int(cumulative[hi - 1]) - base
            block_ts, block_ids = pending.grow(count)
            rng.random(out=block_ts)
            block_ts *= np.repeat(durations[lo:hi], block_sizes)
            block_ts += np.repeat(starts[lo:hi], block_sizes)
            block_ids[:] = np.repeat(order[lo:hi], block_sizes)
            lo = hi

        sort = stable_order(pending.timestamps)
        merged_ts = pending.timestamps[sort]
        merged_ids = pending.flow_ids[sort]
        if clip_to_duration is not None:
            # Clipped packets form a suffix of the sorted round; the
            # reference drops the same set via a mask before sorting.
            keep = int(np.searchsorted(merged_ts, clip_to_duration, side="left"))
            merged_ts = merged_ts[:keep]
            merged_ids = merged_ids[:keep]
        if lo < num_flows:
            # Packets before the next flow's start are final (no earlier
            # packet can still arrive); the rest stay pending.
            emit = int(np.searchsorted(merged_ts, float(starts[lo]), side="left"))
        else:
            emit = merged_ts.size
        if emit:
            if telemetry.enabled:
                telemetry.count("source.chunks")
                telemetry.count("source.packets", emit)
                telemetry.gauge("source.buffer_capacity", pending.capacity)
            yield PacketBatch.from_trusted_columns(
                merged_ts[:emit],
                merged_ids[:emit],
                np.full(emit, packet_size_bytes, dtype=np.int32),
            )
        pending.replace(merged_ts[emit:], merged_ids[emit:])


class PacketSource(abc.ABC):
    """A streaming source of time-ordered packet chunks.

    Subclasses provide the packet stream (:meth:`iter_chunks`) and the
    flow-group mapping (:meth:`group_ids`); the pipeline never needs to
    know where the packets come from.  Both contracts documented in the
    module docstring (time order, chunk-size invariance) are mandatory.
    """

    #: Short human-readable kind, used by :meth:`describe`.
    name: str = "source"

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def iter_chunks(
        self,
        rng: np.random.Generator,
        chunk_packets: int | None = DEFAULT_CHUNK_PACKETS,
    ) -> Iterator[PacketBatch]:
        """Stream the packet trace as time-ordered chunks.

        Parameters
        ----------
        rng:
            Generator for any randomness the source needs; consumption
            must not depend on ``chunk_packets``.
        chunk_packets:
            Approximate packets per chunk; ``None`` materialises the
            whole stream as a single chunk.
        """

    @abc.abstractmethod
    def group_ids(self, key_policy: FlowKeyPolicy) -> np.ndarray:
        """Map every flow id the stream can emit to a flow-group id.

        Returns a 1-D int64 array of length :attr:`num_flows`; flow ids
        in the emitted batches index into it.
        """

    @property
    @abc.abstractmethod
    def num_flows(self) -> int:
        """Number of distinct flow ids the stream can emit."""

    @property
    @abc.abstractmethod
    def duration(self) -> float:
        """End of the stream's time span, in seconds (relative to t = 0)."""

    # ------------------------------------------------------------------
    @property
    def expected_packets(self) -> int | None:
        """Expected total packets of the stream (``None`` when unknown).

        Used by the ``"auto"`` parallel backend to size the workload; an
        upper bound is fine.
        """
        return None

    def describe(self) -> str:
        """One-line deterministic description for reports and logs."""
        expected = self.expected_packets
        packets = f", ~{expected:,} packets" if expected is not None else ""
        return f"{self.name}({self.num_flows:,} flows, {self.duration:.0f}s{packets})"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


class FlowTraceSource(PacketSource):
    """Adapter: the classic flow-level trace expansion as a source.

    This is exactly the stream the pipeline has always executed — the
    expansion of a :class:`~repro.traces.flow_trace.FlowLevelTrace` via
    :func:`iter_expanded_chunks` — so a pipeline run through this source
    is bit-identical to the historical ``with_trace`` path.

    Parameters
    ----------
    trace:
        The flow-level trace to expand.
    clip_to_duration:
        Drop packets at or beyond this time.  The default ``"auto"``
        clips at ``trace.duration`` (the pipeline's historical
        behaviour); pass ``None`` to keep every packet.
    packet_size_bytes:
        Constant per-packet size recorded in the emitted batches.
    """

    name = "flow-trace"

    def __init__(
        self,
        trace: FlowLevelTrace,
        clip_to_duration: float | None | str = "auto",
        packet_size_bytes: int = DEFAULT_PACKET_SIZE_BYTES,
    ) -> None:
        self.trace = trace
        if clip_to_duration == "auto":
            clip_to_duration = trace.duration if trace.duration > 0 else None
        self.clip_to_duration = clip_to_duration
        self.packet_size_bytes = int(packet_size_bytes)

    def iter_chunks(
        self,
        rng: np.random.Generator,
        chunk_packets: int | None = DEFAULT_CHUNK_PACKETS,
        *,
        assembly: str | None = None,
    ) -> Iterator[PacketBatch]:
        return iter_expanded_chunks(
            self.trace,
            rng,
            chunk_packets=chunk_packets,
            clip_to_duration=self.clip_to_duration,
            packet_size_bytes=self.packet_size_bytes,
            assembly=assembly,
        )

    def group_ids(self, key_policy: FlowKeyPolicy) -> np.ndarray:
        return self.trace.group_ids(key_policy)

    @property
    def num_flows(self) -> int:
        return self.trace.num_flows

    @property
    def duration(self) -> float:
        # A clipped stream ends at the clip; an unclipped one at the
        # last flow's end (which for time-shifted traces is later than
        # the trace's own start-to-end span).
        if self.clip_to_duration is not None:
            return float(self.clip_to_duration)
        if self.trace.num_flows == 0:
            return 0.0
        return float((self.trace.start_times + self.trace.durations).max())

    @property
    def expected_packets(self) -> int | None:
        return self.trace.total_packets


class PacketTableSource(PacketSource):
    """A packet-level table held in memory (or loaded from a file).

    Packet tables reference flows by opaque integer id and carry no
    5-tuple metadata, so :meth:`group_ids` maps every flow id to itself
    under any key policy — each recorded flow is its own group.  Input
    ids are compacted to the dense range ``0..num_flows-1`` (in sorted
    id order) at construction, so sparse or hash-like ids from real
    exports never inflate the group arrays.

    Parameters
    ----------
    timestamps, flow_ids, sizes_bytes:
        Columnar packet data; timestamps must be sorted non-decreasing
        (validated).  ``sizes_bytes`` defaults to the paper's 500-byte
        packets.
    """

    name = "packet-table"

    def __init__(
        self,
        timestamps: np.ndarray,
        flow_ids: np.ndarray,
        sizes_bytes: np.ndarray | None = None,
    ) -> None:
        ids = np.asarray(flow_ids, dtype=np.int64)
        if ids.size:
            _, ids = np.unique(ids, return_inverse=True)
        self._batch = PacketBatch(timestamps, ids.astype(np.int64), sizes_bytes)

    @classmethod
    def from_batch(cls, batch: PacketBatch) -> "PacketTableSource":
        """Build a source from an existing :class:`PacketBatch`."""
        return cls(batch.timestamps, batch.flow_ids, batch.sizes_bytes)

    def iter_chunks(
        self,
        rng: np.random.Generator,
        chunk_packets: int | None = DEFAULT_CHUNK_PACKETS,
        *,
        assembly: str | None = None,
    ) -> Iterator[PacketBatch]:
        if chunk_packets is not None and chunk_packets < 1:
            raise ValueError("chunk_packets must be positive when given")
        trusted = _resolve_assembly(assembly) == "fast"
        batch = self._batch
        total = len(batch)
        if total == 0:
            return
        step = total if chunk_packets is None else int(chunk_packets)
        for lo in range(0, total, step):
            hi = min(lo + step, total)
            if trusted:
                # The stored batch was validated at construction; every
                # slice of it satisfies the invariants, so chunks are
                # emitted as zero-copy views with no re-validation.
                yield PacketBatch.from_trusted_columns(
                    batch.timestamps[lo:hi], batch.flow_ids[lo:hi], batch.sizes_bytes[lo:hi]
                )
            else:
                yield PacketBatch(
                    batch.timestamps[lo:hi], batch.flow_ids[lo:hi], batch.sizes_bytes[lo:hi]
                )

    def group_ids(self, key_policy: FlowKeyPolicy) -> np.ndarray:
        return np.arange(self.num_flows, dtype=np.int64)

    @property
    def num_flows(self) -> int:
        if len(self._batch) == 0:
            return 0
        return int(self._batch.flow_ids.max()) + 1

    @property
    def duration(self) -> float:
        if len(self._batch) == 0:
            return 0.0
        return float(self._batch.timestamps[-1])

    @property
    def expected_packets(self) -> int | None:
        return len(self._batch)


class CSVPacketSource(PacketTableSource):
    """A packet table read from a CSV file written by
    :func:`repro.traces.io.write_packet_batch_csv`."""

    name = "packet-csv"

    def __init__(self, path: str | Path) -> None:
        from .io import read_packet_batch_csv

        self.path = Path(path)
        batch = read_packet_batch_csv(self.path)
        super().__init__(batch.timestamps, batch.flow_ids, batch.sizes_bytes)


class NPZPacketSource(PacketTableSource):
    """A packet table read from an NPZ file written by
    :func:`repro.traces.io.write_packet_batch_npz`.

    By default the file is opened memory-mapped: for NPZ files written
    uncompressed (``write_packet_batch_npz(..., compressed=False)``)
    the timestamp and size columns stay OS-paged views instead of heap
    copies, so opening a multi-gigabyte packet table is cheap and
    streaming it touches pages on demand.  Compressed archives fall
    back to the ordinary in-memory read transparently; pass
    ``mmap=False`` to force it.
    """

    name = "packet-npz"

    def __init__(self, path: str | Path, mmap: bool = True) -> None:
        from .io import read_packet_batch_npz

        self.path = Path(path)
        batch = read_packet_batch_npz(self.path, mmap=mmap)
        super().__init__(batch.timestamps, batch.flow_ids, batch.sizes_bytes)


class MergeSource(PacketSource):
    """Time-ordered merge of N sources — multi-link monitoring.

    Flow ids of part ``k`` are offset by the total flow count of parts
    ``0..k-1``, and flow groups are offset the same way, so flows (and
    groups) observed on different links never collide — a /24 prefix
    seen on two links is two distinct groups, as two separate monitors
    would report it.

    The merge is exact and chunk-size invariant: packets are emitted in
    global time order with ties broken by source position (then by
    in-source order), whatever chunk size the parts are pulled at.
    Memory is bounded by roughly one in-flight chunk per part.
    """

    name = "merge"

    def __init__(self, *sources: PacketSource) -> None:
        if len(sources) == 1 and isinstance(sources[0], Sequence):
            sources = tuple(sources[0])
        if not sources:
            raise ValueError("MergeSource needs at least one source")
        self.sources = tuple(sources)
        counts = [source.num_flows for source in self.sources]
        self._flow_offsets = np.concatenate(([0], np.cumsum(counts)))[:-1].astype(np.int64)

    def iter_chunks(
        self,
        rng: np.random.Generator,
        chunk_packets: int | None = DEFAULT_CHUNK_PACKETS,
        *,
        assembly: str | None = None,
    ) -> Iterator[PacketBatch]:
        if _resolve_assembly(assembly) == "fast":
            return self._iter_chunks_fast(rng, chunk_packets)
        return self._iter_chunks_reference(rng, chunk_packets)

    def _iter_chunks_fast(
        self,
        rng: np.random.Generator,
        chunk_packets: int | None,
    ) -> Iterator[PacketBatch]:
        """Zero-copy k-way merge — bit-identical to the reference.

        Each part's pending packets sit in a :class:`RunQueue` of
        chunk views (no per-load copying; only the flow-id offset
        allocates, and not at all for the first part).  Emission cuts
        every part at the bound and merges the per-part runs with
        earlier parts winning ties — the same total order as the
        reference's stable argsort over the part-ordered
        concatenation.  The merged columns are freshly allocated, so
        the emitted chunks are zero-copy views into them.
        """
        if chunk_packets is not None and chunk_packets < 1:
            raise ValueError("chunk_packets must be positive when given")
        children = rng.spawn(len(self.sources))

        def _as_run(chunk: PacketBatch, index: int) -> SortedRun:
            offset = int(self._flow_offsets[index])
            flow_ids = chunk.flow_ids + offset if offset else chunk.flow_ids
            return chunk.timestamps, flow_ids, chunk.sizes_bytes

        if chunk_packets is None:
            # Materialised mode: one chunk holding the whole merged
            # stream, assembled from the part-ordered chunk runs.
            runs: list[SortedRun] = []
            for index, (source, child) in enumerate(zip(self.sources, children)):
                for chunk in source.iter_chunks(child, None):
                    if len(chunk):
                        runs.append(_as_run(chunk, index))
            if not runs:
                return
            ts, ids, sizes = merge_sorted_runs(runs)
            assert sizes is not None
            yield PacketBatch.from_trusted_columns(ts, ids, sizes)
            return
        iterators = [
            iter(source.iter_chunks(child, chunk_packets))
            for source, child in zip(self.sources, children)
        ]
        n = len(self.sources)
        queues = [RunQueue() for _ in range(n)]
        exhausted = [False] * n

        def _load(index: int) -> bool:
            """Enqueue the part's next non-empty chunk as a pending run."""
            while True:
                try:
                    chunk = next(iterators[index])
                except StopIteration:
                    exhausted[index] = True
                    return False
                if len(chunk) == 0:
                    continue
                queues[index].append(_as_run(chunk, index))
                return True

        def _emit(bound: float) -> Iterator[PacketBatch]:
            """Yield every pending packet strictly below ``bound``, merged."""
            runs: list[SortedRun] = []
            for index in range(n):
                runs.extend(queues[index].cut_below(bound))
            if not runs:
                return
            ts, ids, sizes = merge_sorted_runs(runs)
            assert sizes is not None
            step = ts.size if chunk_packets is None else int(chunk_packets)
            for lo in range(0, ts.size, step):
                hi = min(lo + step, ts.size)
                yield PacketBatch.from_trusted_columns(ts[lo:hi], ids[lo:hi], sizes[lo:hi])

        for index in range(n):
            _load(index)
        while True:
            live = [index for index in range(n) if not exhausted[index]]
            if not live:
                yield from _emit(np.inf)
                return
            bound = min(queues[index].last_time() for index in live)
            emitted = False
            for batch in _emit(bound):
                emitted = True
                yield batch
            if not emitted:
                # Everything pending sits exactly at the bound; pull more
                # data from the blocking parts so the bound can advance.
                for index in live:
                    if queues[index].last_time() <= bound:
                        _load(index)

    def _iter_chunks_reference(
        self,
        rng: np.random.Generator,
        chunk_packets: int | None,
    ) -> Iterator[PacketBatch]:
        """The original concatenate + stable-argsort merge (oracle path)."""
        if chunk_packets is not None and chunk_packets < 1:
            raise ValueError("chunk_packets must be positive when given")
        # One child generator per part, derived once up front — each
        # part's randomness is then consumed independently of both the
        # merge schedule and the chunk size.
        children = rng.spawn(len(self.sources))
        if chunk_packets is None:
            # Materialised mode: one chunk holding the whole merged
            # stream.  The source-ordered concatenation plus a stable
            # sort produces the same total order as the incremental
            # merge below (ties by source position, then in-source).
            parts = [
                list(source.iter_chunks(child, None))
                for source, child in zip(self.sources, children)
            ]
            ts = [c.timestamps for chunks in parts for c in chunks]
            ids = [
                c.flow_ids + self._flow_offsets[index]
                for index, chunks in enumerate(parts)
                for c in chunks
            ]
            sizes = [c.sizes_bytes for chunks in parts for c in chunks]
            if not ts or not sum(arr.size for arr in ts):
                return
            all_ts = np.concatenate(ts)
            order = np.argsort(all_ts, kind="stable")
            yield PacketBatch(
                all_ts[order], np.concatenate(ids)[order], np.concatenate(sizes)[order]
            )
            return
        iterators = [
            iter(source.iter_chunks(child, chunk_packets))
            for source, child in zip(self.sources, children)
        ]
        n = len(self.sources)
        pending_ts = [np.empty(0, dtype=np.float64) for _ in range(n)]
        pending_ids = [np.empty(0, dtype=np.int64) for _ in range(n)]
        pending_sizes = [np.empty(0, dtype=np.int32) for _ in range(n)]
        exhausted = [False] * n

        def _load(index: int) -> bool:
            """Append the part's next non-empty chunk to its pending buffer."""
            while True:
                try:
                    chunk = next(iterators[index])
                except StopIteration:
                    exhausted[index] = True
                    return False
                if len(chunk) == 0:
                    continue
                pending_ts[index] = np.concatenate((pending_ts[index], chunk.timestamps))  # reprolint: disable=source-hot-concat -- retained reference path, bit-checked against fast
                pending_ids[index] = np.concatenate(  # reprolint: disable=source-hot-concat -- retained reference path, bit-checked against fast
                    (pending_ids[index], chunk.flow_ids + self._flow_offsets[index])
                )
                pending_sizes[index] = np.concatenate((pending_sizes[index], chunk.sizes_bytes))  # reprolint: disable=source-hot-concat -- retained reference path, bit-checked against fast
                return True

        def _emit(bound: float) -> Iterator[PacketBatch]:
            """Yield every pending packet strictly below ``bound``, merged.

            Packets below the bound are final: every part's future
            packets arrive at or after its last loaded timestamp, and
            the bound is the minimum of those over the live parts.
            """
            parts_ts, parts_ids, parts_sizes = [], [], []
            for index in range(n):
                cut = int(np.searchsorted(pending_ts[index], bound, side="left"))
                if cut == 0:
                    continue
                parts_ts.append(pending_ts[index][:cut])
                parts_ids.append(pending_ids[index][:cut])
                parts_sizes.append(pending_sizes[index][:cut])
                pending_ts[index] = pending_ts[index][cut:]
                pending_ids[index] = pending_ids[index][cut:]
                pending_sizes[index] = pending_sizes[index][cut:]
            if not parts_ts:
                return
            ts = np.concatenate(parts_ts)
            ids = np.concatenate(parts_ids)
            sizes = np.concatenate(parts_sizes)
            # Stable sort over the source-ordered concatenation: ties at
            # equal timestamps resolve by source position, then by
            # in-source order — the same total order for any chunk size.
            order = np.argsort(ts, kind="stable")
            ts, ids, sizes = ts[order], ids[order], sizes[order]
            step = ts.size if chunk_packets is None else int(chunk_packets)
            for lo in range(0, ts.size, step):
                hi = min(lo + step, ts.size)
                yield PacketBatch(ts[lo:hi], ids[lo:hi], sizes[lo:hi])

        for index in range(n):
            _load(index)
        while True:
            live = [index for index in range(n) if not exhausted[index]]
            if not live:
                yield from _emit(np.inf)
                return
            bound = min(float(pending_ts[index][-1]) for index in live)
            emitted = False
            for batch in _emit(bound):
                emitted = True
                yield batch
            if not emitted:
                # Everything pending sits exactly at the bound; pull more
                # data from the blocking parts so the bound can advance.
                for index in live:
                    if float(pending_ts[index][-1]) <= bound:
                        _load(index)

    def group_ids(self, key_policy: FlowKeyPolicy) -> np.ndarray:
        parts = []
        offset = 0
        for source in self.sources:
            groups = np.asarray(source.group_ids(key_policy), dtype=np.int64)
            parts.append(groups + offset)
            offset += int(groups.max()) + 1 if groups.size else 0
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    @property
    def num_flows(self) -> int:
        return int(sum(source.num_flows for source in self.sources))

    @property
    def duration(self) -> float:
        # Part durations are stream end times, so the merged stream
        # ends when the last part does — correct even for parts shifted
        # to start mid-trace (e.g. the churn scenario's phases).
        return max((source.duration for source in self.sources), default=0.0)

    @property
    def expected_packets(self) -> int | None:
        total = 0
        for source in self.sources:
            expected = source.expected_packets
            if expected is None:
                return None
            total += expected
        return total

    def describe(self) -> str:
        inner = " + ".join(source.describe() for source in self.sources)
        return f"merge[{inner}]"


def _mix64(values: np.ndarray) -> np.ndarray:
    """SplitMix64 finaliser: uint64 -> well-mixed uint64 (vectorised)."""
    z = values + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


class LoadScaleSource(PacketSource):
    """Scale the packet load of a source by a constant factor.

    Each packet is replicated ``floor(factor)`` times plus one more with
    probability ``frac(factor)`` — so ``factor < 1`` thins the stream
    and ``factor > 1`` amplifies it (a crude but effective model of load
    growth or attack amplification).  The per-packet decision hashes a
    single up-front seed with the packet's global stream position, so it
    is deterministic and chunk-size invariant; replicas share their
    original's timestamp and flow id.
    """

    name = "load-scale"

    def __init__(self, source: PacketSource, factor: float) -> None:
        if factor < 0:
            raise ValueError("factor must be non-negative")
        self.source = source
        self.factor = float(factor)

    def iter_chunks(
        self,
        rng: np.random.Generator,
        chunk_packets: int | None = DEFAULT_CHUNK_PACKETS,
        *,
        assembly: str | None = None,
    ) -> Iterator[PacketBatch]:
        if _resolve_assembly(assembly) == "fast":
            return self._iter_chunks_fast(rng, chunk_packets)
        return self._iter_chunks_reference(rng, chunk_packets)

    def _iter_chunks_reference(
        self,
        rng: np.random.Generator,
        chunk_packets: int | None,
    ) -> Iterator[PacketBatch]:
        """The original always-hash, always-validate path (oracle)."""
        # One draw up front; all later randomness is hash-derived so the
        # rng consumption cannot depend on the chunk boundaries.
        seed = np.uint64(rng.integers(0, 2**63, dtype=np.int64))
        base = int(self.factor)
        fraction = self.factor - base
        position = 0
        for chunk in self.source.iter_chunks(rng, chunk_packets):
            count = len(chunk)
            if count == 0:
                continue
            indices = np.arange(position, position + count, dtype=np.uint64)
            position += count
            uniforms = _mix64(indices ^ seed).astype(np.float64) / float(2**64)
            repeats = base + (uniforms < fraction).astype(np.int64)
            if not repeats.any():
                continue
            yield PacketBatch(
                np.repeat(chunk.timestamps, repeats),
                np.repeat(chunk.flow_ids, repeats),
                np.repeat(chunk.sizes_bytes, repeats),
            )

    def _iter_chunks_fast(
        self,
        rng: np.random.Generator,
        chunk_packets: int | None,
    ) -> Iterator[PacketBatch]:
        """Shortcut integer factors; skip re-validation everywhere.

        ``np.repeat`` preserves sortedness, dtypes and sign, so the
        replicated columns satisfy every batch invariant by
        construction and are emitted through the trusted constructor.
        Integer factors need no per-packet hash at all: the fractional
        draw ``uniforms < fraction`` is constant-false, making the
        repeat count the same scalar for every packet.  The up-front
        seed draw and the inner source's RNG consumption are preserved
        exactly, so the stream stays chunk-size invariant and
        bit-identical to the reference.
        """
        seed = np.uint64(rng.integers(0, 2**63, dtype=np.int64))
        base = int(self.factor)
        fraction = self.factor - base
        if fraction > 0.0:
            position = 0
            for chunk in self.source.iter_chunks(rng, chunk_packets):
                count = len(chunk)
                if count == 0:
                    continue
                indices = np.arange(position, position + count, dtype=np.uint64)
                position += count
                uniforms = _mix64(indices ^ seed).astype(np.float64) / float(2**64)
                repeats = base + (uniforms < fraction).astype(np.int64)
                if not repeats.any():
                    continue
                yield PacketBatch.from_trusted_columns(
                    np.repeat(chunk.timestamps, repeats),
                    np.repeat(chunk.flow_ids, repeats),
                    np.repeat(chunk.sizes_bytes, repeats),
                )
            return
        # Integer factor: constant per-packet repeat count.  The inner
        # source is still drained even for factor 0 so its randomness is
        # consumed exactly as the reference consumes it.
        for chunk in self.source.iter_chunks(rng, chunk_packets):
            if len(chunk) == 0 or base == 0:
                continue
            if base == 1:
                yield chunk
            else:
                yield PacketBatch.from_trusted_columns(
                    np.repeat(chunk.timestamps, base),
                    np.repeat(chunk.flow_ids, base),
                    np.repeat(chunk.sizes_bytes, base),
                )

    def group_ids(self, key_policy: FlowKeyPolicy) -> np.ndarray:
        return self.source.group_ids(key_policy)

    @property
    def num_flows(self) -> int:
        return self.source.num_flows

    @property
    def duration(self) -> float:
        return self.source.duration

    @property
    def expected_packets(self) -> int | None:
        expected = self.source.expected_packets
        if expected is None:
            return None
        return int(round(expected * self.factor))

    def describe(self) -> str:
        return f"load-scale(x{self.factor:g}, {self.source.describe()})"


@dataclass(frozen=True)
class PiecewiseLinearWarp:
    """A monotone piecewise-linear time transformation (picklable).

    Maps input times through ``np.interp`` over the ``(inputs,
    outputs)`` knots; outside the knot range the boundary value is held.
    Both arrays must be non-decreasing so the warp preserves time order.
    """

    inputs: np.ndarray
    outputs: np.ndarray

    def __post_init__(self) -> None:
        inputs = np.asarray(self.inputs, dtype=np.float64)
        outputs = np.asarray(self.outputs, dtype=np.float64)
        if inputs.ndim != 1 or inputs.shape != outputs.shape or inputs.size < 2:
            raise ValueError("warp needs matching 1-D knot arrays of length >= 2")
        if np.any(np.diff(inputs) < 0) or np.any(np.diff(outputs) < 0):
            raise ValueError("warp knots must be non-decreasing")
        object.__setattr__(self, "inputs", inputs)
        object.__setattr__(self, "outputs", outputs)

    def __call__(self, times: np.ndarray) -> np.ndarray:
        return np.interp(times, self.inputs, self.outputs)


def diurnal_warp(
    span: float,
    amplitude: float = 0.6,
    period: float | None = None,
    knots: int = 1024,
) -> PiecewiseLinearWarp:
    """A warp that modulates packet rate sinusoidally over ``[0, span]``.

    Applied to a roughly uniform arrival process, the warped stream's
    instantaneous rate is proportional to ``1 + amplitude *
    sin(2*pi*t/period)`` — the classic diurnal load curve compressed to
    the trace length.  The warp maps ``[0, span]`` onto itself, so bin
    counts and the overall packet total are unchanged; only the shape of
    the load over time moves.

    Parameters
    ----------
    span:
        Length of the time interval being reshaped (seconds).
    amplitude:
        Peak-to-mean modulation depth, in ``[0, 1)``.
    period:
        Modulation period in seconds (default: half the span, giving
        one full peak and one full trough).
    knots:
        Resolution of the piecewise-linear inverse.
    """
    if span <= 0:
        raise ValueError("span must be positive")
    if not 0 <= amplitude < 1:
        raise ValueError("amplitude must be in [0, 1)")
    if period is None:
        period = span / 2.0
    if period <= 0:
        raise ValueError("period must be positive")
    grid = np.linspace(0.0, span, int(knots))
    rate = 1.0 + amplitude * np.sin(2.0 * np.pi * grid / period)
    cumulative = np.concatenate(([0.0], np.cumsum((rate[1:] + rate[:-1]) / 2.0 * np.diff(grid))))
    # Normalise so the warp maps [0, span] onto [0, span], then invert:
    # warp(u) = C^{-1}(u * C(span) / span).
    inputs = cumulative * (span / cumulative[-1])
    return PiecewiseLinearWarp(inputs=inputs, outputs=grid)


class TimeWarpSource(PacketSource):
    """Reshape a source's arrival process through a monotone time warp.

    Each packet's timestamp is mapped through ``warp`` (a monotone
    non-decreasing callable over arrays, e.g.
    :class:`PiecewiseLinearWarp`); flow ids, sizes and the relative
    packet order are untouched.  Use :func:`diurnal_warp` for the
    day/night load curve.
    """

    name = "time-warp"

    def __init__(self, source: PacketSource, warp: Callable[[np.ndarray], np.ndarray]) -> None:
        self.source = source
        self.warp = warp

    def iter_chunks(
        self,
        rng: np.random.Generator,
        chunk_packets: int | None = DEFAULT_CHUNK_PACKETS,
        *,
        assembly: str | None = None,
    ) -> Iterator[PacketBatch]:
        # Fast assembly: a PiecewiseLinearWarp is validated monotone
        # non-decreasing at construction, so warping a sorted column
        # keeps it sorted, and its minimum output bounds the warped
        # times from below — every batch invariant holds by
        # construction and re-validation is skipped.  Arbitrary warp
        # callables keep the checked constructor under both backends.
        trusted = (
            _resolve_assembly(assembly) == "fast"
            and isinstance(self.warp, PiecewiseLinearWarp)
            and float(self.warp.outputs[0]) >= 0.0
        )
        for chunk in self.source.iter_chunks(rng, chunk_packets):
            warped = self.warp(chunk.timestamps)
            if trusted:
                yield PacketBatch.from_trusted_columns(warped, chunk.flow_ids, chunk.sizes_bytes)
            else:
                yield PacketBatch(warped, chunk.flow_ids, chunk.sizes_bytes)

    def group_ids(self, key_policy: FlowKeyPolicy) -> np.ndarray:
        return self.source.group_ids(key_policy)

    @property
    def num_flows(self) -> int:
        return self.source.num_flows

    @property
    def duration(self) -> float:
        return float(np.asarray(self.warp(np.asarray(self.source.duration))))

    @property
    def expected_packets(self) -> int | None:
        return self.source.expected_packets

    def describe(self) -> str:
        return f"time-warp({self.source.describe()})"


__all__ = [
    "ASSEMBLY_BACKENDS",
    "DEFAULT_CHUNK_PACKETS",
    "default_assembly",
    "use_assembly",
    "PacketSource",
    "FlowTraceSource",
    "PacketTableSource",
    "CSVPacketSource",
    "NPZPacketSource",
    "MergeSource",
    "LoadScaleSource",
    "TimeWarpSource",
    "PiecewiseLinearWarp",
    "diurnal_warp",
    "iter_expanded_chunks",
]
