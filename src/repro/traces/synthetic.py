"""Synthetic trace generators.

The paper evaluates its models on two operational traces we do not have
access to (see DESIGN.md, "Substitutions"):

* a 30-minute flow-level trace from a Sprint backbone OC-12 link
  (2360 5-tuple flows/s, 4.8 KB mean flow size, 13 s mean duration,
  /24 aggregation at 350 prefixes/s with 16.6 KB mean size);
* a 30-minute NLANR packet-level trace from an Abilene OC-48 link
  (higher utilisation, more flows, short-tailed flow size distribution).

The generators below synthesise flow-level traces with those published
characteristics.  Flow arrivals follow a Poisson process, flow sizes are
drawn from a configurable distribution (Pareto by default, matching the
paper's modelling assumption), durations are exponential, and
destination addresses are drawn from a pool of /24 prefixes with
Zipf-like popularity so that the /24 aggregation reduces the flow count
by roughly the ratio the paper reports (2360 / 350 ≈ 6.7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..distributions.base import FlowSizeDistribution
from ..distributions.lognormal import LognormalFlowSizes
from ..distributions.pareto import ParetoFlowSizes
from ..flows.packets import DEFAULT_PACKET_SIZE_BYTES
from .flow_trace import FlowLevelTrace

#: Flow arrival rate of the Sprint trace, 5-tuple definition (flows/s).
SPRINT_FIVE_TUPLE_FLOWS_PER_SECOND = 2360.0
#: Flow arrival rate of the Sprint trace, /24 prefix definition (prefixes/s).
SPRINT_PREFIX_FLOWS_PER_SECOND = 350.0
#: Mean flow size of the Sprint trace, 5-tuple definition (bytes).
SPRINT_FIVE_TUPLE_MEAN_BYTES = 4800.0
#: Mean flow size of the Sprint trace, /24 prefix definition (bytes).
SPRINT_PREFIX_MEAN_BYTES = 16600.0
#: Mean flow duration reported for the Sprint trace (seconds).
SPRINT_MEAN_FLOW_DURATION = 13.0
#: Duration of both traces used in the paper (seconds).
PAPER_TRACE_DURATION = 1800.0


def _mean_packets(mean_bytes: float, packet_size: int = DEFAULT_PACKET_SIZE_BYTES) -> float:
    """Convert a mean flow size in bytes to packets (paper: 500-byte packets)."""
    return mean_bytes / packet_size


@dataclass
class SyntheticTraceConfig:
    """Parameters of a synthetic flow-level trace.

    Attributes
    ----------
    duration:
        Trace duration in seconds.
    flow_arrival_rate:
        Poisson flow arrival rate (flows per second), at the 5-tuple
        granularity.
    size_distribution:
        Flow size distribution in packets.
    mean_flow_duration:
        Mean flow duration in seconds (exponential).
    num_prefixes:
        Size of the destination /24 prefix pool.  Smaller pools make the
        /24 aggregation coarser.
    prefix_zipf_exponent:
        Zipf exponent of prefix popularity (0 = uniform).
    scale:
        Global scale factor applied to ``flow_arrival_rate``.  The paper
        works at backbone scale (millions of flows per measurement
        interval); scaling down keeps simulations laptop-sized while
        preserving all distributional shapes.  Recorded so experiment
        reports can state the substitution explicitly.
    """

    duration: float = PAPER_TRACE_DURATION
    flow_arrival_rate: float = SPRINT_FIVE_TUPLE_FLOWS_PER_SECOND
    size_distribution: FlowSizeDistribution = field(
        default_factory=lambda: ParetoFlowSizes.from_mean(
            mean=_mean_packets(SPRINT_FIVE_TUPLE_MEAN_BYTES), shape=1.5
        )
    )
    mean_flow_duration: float = SPRINT_MEAN_FLOW_DURATION
    num_prefixes: int = 2000
    prefix_zipf_exponent: float = 1.0
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.flow_arrival_rate <= 0:
            raise ValueError("flow_arrival_rate must be positive")
        if self.mean_flow_duration < 0:
            raise ValueError("mean_flow_duration must be non-negative")
        if self.num_prefixes < 1:
            raise ValueError("num_prefixes must be at least 1")
        if self.prefix_zipf_exponent < 0:
            raise ValueError("prefix_zipf_exponent must be non-negative")
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    @property
    def effective_arrival_rate(self) -> float:
        """Flow arrival rate after applying the scale factor."""
        return self.flow_arrival_rate * self.scale

    @property
    def expected_flows(self) -> float:
        """Expected total number of flows in the trace."""
        return self.effective_arrival_rate * self.duration


class SyntheticTraceGenerator:
    """Generate flow-level traces from a :class:`SyntheticTraceConfig`."""

    def __init__(self, config: SyntheticTraceConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    def _prefix_pool_probabilities(self) -> np.ndarray:
        ranks = np.arange(1, self.config.num_prefixes + 1, dtype=float)
        if self.config.prefix_zipf_exponent == 0.0:
            weights = np.ones_like(ranks)
        else:
            weights = ranks ** (-self.config.prefix_zipf_exponent)
        return weights / weights.sum()

    def generate(self, rng: np.random.Generator | int | None = None) -> FlowLevelTrace:
        """Generate one flow-level trace realisation."""
        generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        config = self.config

        expected = config.expected_flows
        num_flows = int(generator.poisson(expected))
        if num_flows < 2:
            num_flows = 2

        start_times = np.sort(generator.uniform(0.0, config.duration, size=num_flows))
        sizes = config.size_distribution.sample_packets(num_flows, generator)
        if config.mean_flow_duration > 0:
            durations = generator.exponential(config.mean_flow_duration, size=num_flows)
        else:
            durations = np.zeros(num_flows)
        # Single-packet flows have zero duration by construction.
        durations = np.where(sizes <= 1, 0.0, durations)

        # Destination prefixes: a Zipf-popular pool of /24 networks under 10.0.0.0/8.
        prefix_probs = self._prefix_pool_probabilities()
        prefix_indices = generator.choice(config.num_prefixes, size=num_flows, p=prefix_probs)
        base_prefix = np.uint32(0x0A000000)  # 10.0.0.0
        dst_ips = base_prefix + (prefix_indices.astype(np.uint32) << np.uint32(8))
        dst_ips += generator.integers(1, 255, size=num_flows, dtype=np.uint32)

        src_ips = (
            np.uint32(0xC0A80000)  # 192.168.0.0/16 source pool
            + generator.integers(0, 0xFFFF, size=num_flows, dtype=np.uint32)
        )
        src_ports = generator.integers(1024, 65535, size=num_flows, dtype=np.uint16)
        dst_ports = generator.choice(
            np.array([80, 443, 25, 53, 110, 8080], dtype=np.uint16), size=num_flows
        )
        protocols = np.full(num_flows, 6, dtype=np.uint8)

        return FlowLevelTrace(
            start_times=start_times,
            durations=durations,
            sizes_packets=sizes,
            src_ips=src_ips,
            dst_ips=dst_ips,
            src_ports=src_ports,
            dst_ports=dst_ports,
            protocols=protocols,
        )


def sprint_like_config(
    shape: float = 1.5,
    scale: float = 1.0,
    duration: float = PAPER_TRACE_DURATION,
) -> SyntheticTraceConfig:
    """Configuration mimicking the Sprint OC-12 trace of Section 8.1.

    Parameters
    ----------
    shape:
        Pareto shape of the 5-tuple flow size distribution (paper: 1.5).
    scale:
        Scale factor on the flow arrival rate (1.0 = full backbone
        scale; use e.g. 0.02 for laptop-sized simulations).
    duration:
        Trace duration in seconds (paper: 30 minutes).
    """
    return SyntheticTraceConfig(
        duration=duration,
        flow_arrival_rate=SPRINT_FIVE_TUPLE_FLOWS_PER_SECOND,
        size_distribution=ParetoFlowSizes.from_mean(
            mean=_mean_packets(SPRINT_FIVE_TUPLE_MEAN_BYTES), shape=shape
        ),
        mean_flow_duration=SPRINT_MEAN_FLOW_DURATION,
        num_prefixes=2000,
        prefix_zipf_exponent=1.0,
        scale=scale,
    )


def abilene_like_config(
    sigma: float = 1.0,
    scale: float = 1.0,
    duration: float = PAPER_TRACE_DURATION,
) -> SyntheticTraceConfig:
    """Configuration mimicking the NLANR Abilene-I trace of Section 8.3.

    The Abilene link carries more flows than the Sprint link and its
    flow size distribution is short tailed; we model the sizes with a
    lognormal distribution of moderate sigma, and raise the flow arrival
    rate by 50%.
    """
    return SyntheticTraceConfig(
        duration=duration,
        flow_arrival_rate=1.5 * SPRINT_FIVE_TUPLE_FLOWS_PER_SECOND,
        size_distribution=LognormalFlowSizes.from_mean_sigma(
            mean=_mean_packets(SPRINT_FIVE_TUPLE_MEAN_BYTES), sigma=sigma
        ),
        mean_flow_duration=SPRINT_MEAN_FLOW_DURATION,
        num_prefixes=3000,
        prefix_zipf_exponent=1.0,
        scale=scale,
    )


__all__ = [
    "SyntheticTraceConfig",
    "SyntheticTraceGenerator",
    "sprint_like_config",
    "abilene_like_config",
    "SPRINT_FIVE_TUPLE_FLOWS_PER_SECOND",
    "SPRINT_PREFIX_FLOWS_PER_SECOND",
    "SPRINT_FIVE_TUPLE_MEAN_BYTES",
    "SPRINT_PREFIX_MEAN_BYTES",
    "SPRINT_MEAN_FLOW_DURATION",
    "PAPER_TRACE_DURATION",
]
