"""Summary statistics of flow-level traces.

Used by examples and experiment reports to state the characteristics of
the synthetic traces (flow arrival rate, mean flow size, flows per
measurement interval, tail heaviness) in the same terms the paper uses
when describing the Sprint and Abilene traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..flows.keys import FlowKeyPolicy
from ..flows.packets import DEFAULT_PACKET_SIZE_BYTES
from .flow_trace import FlowLevelTrace


@dataclass(frozen=True)
class TraceSummary:
    """Headline statistics of a flow-level trace under one flow definition."""

    flow_definition: str
    num_flows: int
    duration: float
    flow_arrival_rate: float
    mean_flow_size_packets: float
    mean_flow_size_bytes: float
    mean_flow_duration: float
    p99_flow_size_packets: float
    max_flow_size_packets: int
    hill_tail_index: float
    mean_flows_per_interval: dict[float, float]


def _hill_tail_index(sizes: np.ndarray, tail_fraction: float = 0.05) -> float:
    """Hill estimator of the flow size tail index."""
    if sizes.size < 10:
        return float("nan")
    ordered = np.sort(sizes.astype(float))[::-1]
    k = max(2, int(np.ceil(tail_fraction * ordered.size)))
    top = ordered[:k]
    threshold = top[-1]
    if threshold <= 0:
        return float("nan")
    logs = np.log(top / threshold)
    mean_log = logs[:-1].mean()
    if mean_log <= 0:
        return float("inf")
    return float(1.0 / mean_log)


def aggregate_sizes(trace: FlowLevelTrace, key_policy: FlowKeyPolicy) -> np.ndarray:
    """Flow sizes (in packets) after aggregating the trace under a flow definition."""
    groups = trace.group_ids(key_policy)
    _, inverse = np.unique(groups, return_inverse=True)
    sums = np.zeros(inverse.max() + 1, dtype=np.int64)
    np.add.at(sums, inverse, trace.sizes_packets)
    return sums


def summarize_trace(
    trace: FlowLevelTrace,
    key_policy: FlowKeyPolicy,
    intervals: tuple[float, ...] = (60.0, 300.0),
    packet_size_bytes: int = DEFAULT_PACKET_SIZE_BYTES,
) -> TraceSummary:
    """Compute the headline statistics of a trace under a flow definition."""
    groups = trace.group_ids(key_policy)
    unique_groups = np.unique(groups)
    sizes = aggregate_sizes(trace, key_policy)

    per_interval: dict[float, float] = {}
    for interval in intervals:
        if interval <= 0:
            raise ValueError("measurement intervals must be positive")
        counts = []
        start = 0.0
        while start < trace.duration:
            window = trace.time_window(start, start + interval)
            counts.append(np.unique(window.group_ids(key_policy)).size)
            start += interval
        per_interval[interval] = float(np.mean(counts)) if counts else 0.0

    return TraceSummary(
        flow_definition=key_policy.name,
        num_flows=int(unique_groups.size),
        duration=trace.duration,
        flow_arrival_rate=float(unique_groups.size / trace.duration) if trace.duration else 0.0,
        mean_flow_size_packets=float(sizes.mean()),
        mean_flow_size_bytes=float(sizes.mean() * packet_size_bytes),
        mean_flow_duration=float(trace.durations.mean()) if trace.num_flows else 0.0,
        p99_flow_size_packets=float(np.percentile(sizes, 99)),
        max_flow_size_packets=int(sizes.max()),
        hill_tail_index=_hill_tail_index(sizes),
        mean_flows_per_interval=per_interval,
    )


__all__ = ["TraceSummary", "summarize_trace", "aggregate_sizes"]
