"""Flow-level to packet-level trace expansion.

The paper (Section 8.1) regenerates packets from the Sprint flow-level
trace by distributing each flow's packets uniformly over the flow's
lifetime, with all packets 500 bytes — equivalent, for long flows, to a
homogeneous Poisson process.  This module implements exactly that
expansion, producing the columnar
:class:`~repro.flows.packets.PacketBatch` the simulation consumes.
"""

from __future__ import annotations

import numpy as np

from ..flows.packets import DEFAULT_PACKET_SIZE_BYTES, PacketBatch
from .buffers import stable_order
from .flow_trace import FlowLevelTrace
from .source import _resolve_assembly


def expand_to_packets(
    trace: FlowLevelTrace,
    rng: np.random.Generator | int | None = None,
    packet_size_bytes: int = DEFAULT_PACKET_SIZE_BYTES,
    clip_to_duration: float | None = None,
    assembly: str | None = None,
) -> PacketBatch:
    """Expand a flow-level trace into a packet-level batch.

    Parameters
    ----------
    trace:
        Flow-level trace to expand.
    rng:
        Random generator (or seed) used to place packets uniformly
        within each flow's lifetime.
    packet_size_bytes:
        Constant packet size (paper: 500 bytes).
    clip_to_duration:
        When given, packets falling after this time are dropped — this
        reproduces the truncation that the binning method applies to
        flows still active at the end of the observation window.
    assembly:
        Ordering backend (``"fast"``/``"reference"``); ``None`` uses
        the scoped default (:func:`repro.traces.source.use_assembly`).
        ``"fast"`` replaces the stable ``np.argsort`` over all ~N
        packets with :func:`repro.traces.buffers.stable_order` (the
        introsort + exact tie fix-up), which is bit-identical — packet
        placements are drawn in row order either way, so ties between
        flows keep row order under both backends.

    Returns
    -------
    PacketBatch
        Packets sorted by timestamp; ``flow_ids`` index the rows of the
        input trace.
    """
    if packet_size_bytes <= 0:
        raise ValueError("packet_size_bytes must be positive")
    backend = _resolve_assembly(assembly)
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

    sizes = trace.sizes_packets
    total_packets = int(sizes.sum())
    if total_packets == 0:
        return PacketBatch(np.empty(0), np.empty(0, dtype=np.int64))

    flow_ids = np.repeat(np.arange(trace.num_flows, dtype=np.int64), sizes)
    starts = np.repeat(trace.start_times, sizes)
    durations = np.repeat(trace.durations, sizes)
    offsets = generator.random(total_packets) * durations
    timestamps = starts + offsets

    if clip_to_duration is not None:
        if clip_to_duration <= 0:
            raise ValueError("clip_to_duration must be positive")
        keep = timestamps < clip_to_duration
        timestamps = timestamps[keep]
        flow_ids = flow_ids[keep]

    if backend == "fast":
        order = stable_order(timestamps)
        timestamps = timestamps[order]
        flow_ids = flow_ids[order]
        sizes_bytes = np.full(timestamps.size, packet_size_bytes, dtype=np.int32)
        return PacketBatch.from_trusted_columns(timestamps, flow_ids, sizes_bytes)
    order = np.argsort(timestamps, kind="stable")
    timestamps = timestamps[order]
    flow_ids = flow_ids[order]
    sizes_bytes = np.full(timestamps.size, packet_size_bytes, dtype=np.int32)
    return PacketBatch(timestamps, flow_ids, sizes_bytes)


def expected_link_utilisation_bps(
    trace: FlowLevelTrace,
    packet_size_bytes: int = DEFAULT_PACKET_SIZE_BYTES,
) -> float:
    """Average offered load of the expanded trace in bits per second.

    The paper reports 90 Mb/s for the Sprint OC-12 link; this helper
    lets tests and examples check how a scaled-down synthetic trace
    compares.
    """
    if trace.duration <= 0:
        return 0.0
    total_bits = trace.total_packets * packet_size_bytes * 8.0
    return total_bits / trace.duration


__all__ = ["expand_to_packets", "expected_link_utilisation_bps"]
