"""Aggregate inversion estimators (related work, Section 2 of the paper).

Duffield, Lund and Thorup's estimators recover *aggregate* flow
statistics from packet-sampled traffic: the total number of flows and
the mean flow size in the original stream.  They are included as
baselines to make the paper's contrast concrete — aggregate inversion
works at low sampling rates while per-flow ranking does not.

Notation: sampling rate ``p``; the sampled stream contains ``m`` flow
records of which ``m1`` have exactly one sampled packet, and ``k``
sampled packets in total.  Assuming independent packet sampling and no
flow splitting,

* an (approximately) unbiased estimate of the number of original flows
  that were *seen* is ``m`` itself, but many original flows are missed;
  Duffield et al. estimate the total number of original flows as
  ``N_hat = m + m1 * (1 - p) / p`` — each single-packet sampled flow
  stands in for the ``(1-p)/p`` flows whose single sampled packet was
  not drawn;
* the mean original flow size is estimated as ``k / (p * N_hat)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np


@dataclass(frozen=True)
class AggregateEstimates:
    """Aggregate statistics of the original stream inverted from samples."""

    sampling_rate: float
    sampled_flows: int
    sampled_single_packet_flows: int
    sampled_packets: int
    estimated_total_flows: float
    estimated_total_packets: float
    estimated_mean_flow_size: float


def invert_aggregates(
    sampled_flow_sizes: Sequence[int],
    sampling_rate: float,
) -> AggregateEstimates:
    """Estimate original aggregate statistics from sampled per-flow counts.

    Parameters
    ----------
    sampled_flow_sizes:
        Sampled packet count of every flow *present* in the sampled
        stream (all values must be at least 1).
    sampling_rate:
        Packet sampling probability ``p``.
    """
    if not 0.0 < sampling_rate <= 1.0:
        raise ValueError(f"sampling_rate must be in (0, 1], got {sampling_rate}")
    sizes = np.asarray(list(sampled_flow_sizes), dtype=np.int64)
    if sizes.ndim != 1:
        raise ValueError("sampled_flow_sizes must be 1-D")
    if sizes.size and np.any(sizes < 1):
        raise ValueError("sampled flows must contain at least one packet each")

    m = int(sizes.size)
    m1 = int(np.count_nonzero(sizes == 1))
    k = int(sizes.sum())
    p = float(sampling_rate)

    estimated_flows = m + m1 * (1.0 - p) / p
    estimated_packets = k / p
    mean_size = estimated_packets / estimated_flows if estimated_flows > 0 else 0.0
    return AggregateEstimates(
        sampling_rate=p,
        sampled_flows=m,
        sampled_single_packet_flows=m1,
        sampled_packets=k,
        estimated_total_flows=float(estimated_flows),
        estimated_total_packets=float(estimated_packets),
        estimated_mean_flow_size=float(mean_size),
    )


def missed_flow_probability(original_size: int, sampling_rate: float) -> float:
    """Probability that a flow of a given size is completely missed.

    ``(1 - p) ** S`` — the quantity that makes inversion of the flow
    size distribution ill-posed at low rates (Section 2).
    """
    if original_size < 1:
        raise ValueError("original_size must be at least 1")
    if not 0.0 < sampling_rate <= 1.0:
        raise ValueError(f"sampling_rate must be in (0, 1], got {sampling_rate}")
    return float((1.0 - sampling_rate) ** original_size)


def expected_sampled_flows(
    original_sizes: Sequence[int],
    sampling_rate: float,
) -> float:
    """Expected number of original flows that appear in the sampled stream."""
    sizes = np.asarray(list(original_sizes), dtype=float)
    if sizes.size and np.any(sizes < 1):
        raise ValueError("original flow sizes must be at least 1 packet")
    if not 0.0 < sampling_rate <= 1.0:
        raise ValueError(f"sampling_rate must be in (0, 1], got {sampling_rate}")
    return float(np.sum(1.0 - (1.0 - sampling_rate) ** sizes))


__all__ = [
    "AggregateEstimates",
    "invert_aggregates",
    "missed_flow_probability",
    "expected_sampled_flows",
]
