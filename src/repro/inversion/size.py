"""Per-flow size estimation from sampled counts.

Inverting the size of an individual flow from its sampled packet count
is the simplest inversion problem: under Bernoulli sampling with rate
``p``, the unbiased estimator of the original size is ``s / p``.  The
paper's point is that unbiasedness is not enough for *ranking* — the
estimation noise of two comparable flows overlaps — but the estimator
and its confidence interval remain the building block operators use in
practice, so they are provided here together with error bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class FlowSizeEstimate:
    """Estimate of an original flow size from its sampled packet count."""

    sampled_packets: int
    sampling_rate: float
    estimate: float
    std_error: float
    confidence_low: float
    confidence_high: float
    confidence_level: float


def estimate_flow_size(
    sampled_packets: int,
    sampling_rate: float,
    confidence_level: float = 0.95,
) -> FlowSizeEstimate:
    """Estimate the original flow size from a sampled packet count.

    The estimator is ``s / p``; the confidence interval uses the Normal
    approximation of the binomial, whose standard deviation (expressed
    on the original-size scale) is ``sqrt(s * (1 - p)) / p``.

    Parameters
    ----------
    sampled_packets:
        Number of packets of the flow present in the sampled stream.
    sampling_rate:
        Packet sampling probability ``p``.
    confidence_level:
        Two-sided confidence level of the reported interval.
    """
    if sampled_packets < 0:
        raise ValueError("sampled_packets must be non-negative")
    if not 0.0 < sampling_rate <= 1.0:
        raise ValueError(f"sampling_rate must be in (0, 1], got {sampling_rate}")
    if not 0.0 < confidence_level < 1.0:
        raise ValueError("confidence_level must be in (0, 1)")
    estimate = sampled_packets / sampling_rate
    std_error = float(np.sqrt(sampled_packets * (1.0 - sampling_rate)) / sampling_rate)
    z = float(stats.norm.ppf(0.5 + confidence_level / 2.0))
    low = max(float(sampled_packets), estimate - z * std_error)
    high = estimate + z * std_error
    return FlowSizeEstimate(
        sampled_packets=int(sampled_packets),
        sampling_rate=float(sampling_rate),
        estimate=float(estimate),
        std_error=std_error,
        confidence_low=low,
        confidence_high=high,
        confidence_level=float(confidence_level),
    )


def relative_error_bound(
    original_size: float,
    sampling_rate: float,
    confidence_level: float = 0.95,
) -> float:
    """Relative error of the size estimate at a given confidence level.

    For a flow of ``S`` packets the estimator's relative standard
    deviation is ``sqrt((1-p) / (p * S))``; multiplied by the Normal
    quantile it bounds the relative error with the requested
    probability.  This is the quantity used by Choi et al. (the paper's
    reference [3]) to choose a sampling rate for volume estimation.
    """
    if original_size <= 0:
        raise ValueError("original_size must be positive")
    if not 0.0 < sampling_rate <= 1.0:
        raise ValueError(f"sampling_rate must be in (0, 1], got {sampling_rate}")
    z = float(stats.norm.ppf(0.5 + confidence_level / 2.0))
    return float(z * np.sqrt((1.0 - sampling_rate) / (sampling_rate * original_size)))


def rate_for_relative_error(
    original_size: float,
    max_relative_error: float,
    confidence_level: float = 0.95,
) -> float:
    """Sampling rate needed to estimate a flow's size within a relative error.

    Inverts :func:`relative_error_bound`; useful to contrast "volume
    accuracy" targets with the much stricter rates the *ranking* problem
    requires (the contrast the paper draws in its introduction).
    """
    if original_size <= 0:
        raise ValueError("original_size must be positive")
    if max_relative_error <= 0:
        raise ValueError("max_relative_error must be positive")
    z = float(stats.norm.ppf(0.5 + confidence_level / 2.0))
    ratio = (z / max_relative_error) ** 2 / original_size
    return float(min(1.0, ratio / (1.0 + ratio)))


__all__ = ["FlowSizeEstimate", "estimate_flow_size", "relative_error_bound", "rate_for_relative_error"]
