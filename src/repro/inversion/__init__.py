"""Aggregate and per-flow inversion estimators from prior work."""

from .counts import (
    AggregateEstimates,
    expected_sampled_flows,
    invert_aggregates,
    missed_flow_probability,
)
from .size import (
    FlowSizeEstimate,
    estimate_flow_size,
    rate_for_relative_error,
    relative_error_bound,
)

__all__ = [
    "AggregateEstimates",
    "invert_aggregates",
    "missed_flow_probability",
    "expected_sampled_flows",
    "FlowSizeEstimate",
    "estimate_flow_size",
    "relative_error_bound",
    "rate_for_relative_error",
]
